//! Property tests for the runtime's dataflow, memory and serving models.

use proptest::prelude::*;
use spec_hwsim::{DeviceSpec, EngineProfile};
use spec_model::ModelConfig;
use spec_runtime::adaptive::Thresholds;
use spec_runtime::costs::CostModel;
use spec_runtime::dataflow::{step_timeline, DataflowKind, StepParams};
use spec_runtime::memory::MemoryModel;
use spec_runtime::serving::{ServingSim, SystemKind, Workload};

fn params(s: usize, s_att: usize, l_cpu: usize, reuse: f32) -> StepParams {
    StepParams {
        r: 4,
        s_total: s,
        s_attended: s_att.min(s),
        candidates: s / 16,
        candidate_bytes: 512.0,
        l_cpu,
        budget: 2048,
        reuse,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Step latency is monotone in attended length for every paradigm.
    #[test]
    fn step_latency_monotone_in_attended(
        s_att in 512usize..8192,
        extra in 1usize..8192,
        l_cpu in 0usize..33,
    ) {
        let cm = CostModel::new(ModelConfig::llama3_1_8b());
        let dev = DeviceSpec::a100_80g();
        let prof = EngineProfile::flashinfer();
        for kind in [
            DataflowKind::PrefetchFullKv,
            DataflowKind::FetchSparseKv,
            DataflowKind::PrefetchSparseKv,
            DataflowKind::PrefetchSparseV,
            DataflowKind::SpeContext,
        ] {
            let s = 32 * 1024;
            let (_, a) = step_timeline(kind, &cm, &prof, &dev, &params(s, s_att, l_cpu, 0.5));
            let (_, b) = step_timeline(kind, &cm, &prof, &dev, &params(s, s_att + extra, l_cpu, 0.5));
            prop_assert!(b.total >= a.total - 1e-9, "{kind}: {} < {}", b.total, a.total);
        }
    }

    /// More elastic reuse never increases SpeContext's step latency or
    /// transfer volume.
    #[test]
    fn elastic_reuse_never_hurts(
        reuse_lo in 0.0f32..0.5,
        gap in 0.01f32..0.5,
        l_cpu in 1usize..33,
    ) {
        let cm = CostModel::new(ModelConfig::llama3_1_8b());
        let dev = DeviceSpec::a100_80g();
        let prof = EngineProfile::flashinfer();
        let s = 32 * 1024;
        let (_, low) = step_timeline(
            DataflowKind::SpeContext, &cm, &prof, &dev, &params(s, 2048, l_cpu, reuse_lo));
        let (_, high) = step_timeline(
            DataflowKind::SpeContext, &cm, &prof, &dev, &params(s, 2048, l_cpu, reuse_lo + gap));
        prop_assert!(high.total <= low.total + 1e-9);
        prop_assert!(high.bytes_transferred <= low.bytes_transferred + 1e-6);
    }

    /// Memory model: M_part is non-increasing in offloaded layers and
    /// thresholds are consistent with it at every i.
    #[test]
    fn memory_model_and_thresholds_consistent(
        r in 1usize..33,
        budget in 256usize..4096,
    ) {
        let mm = MemoryModel::new(&ModelConfig::llama3_1_8b(), &DeviceSpec::a100_80g());
        let th = Thresholds::compute(&mm, r, budget);
        for i in 1..=mm.layers {
            prop_assert!(th.values[i] >= th.values[i - 1], "thresholds non-decreasing");
            let s = th.values[i];
            if s > 0 {
                prop_assert!(mm.m_part(r, s as usize, i, budget) <= mm.gpu_mem as f64);
            }
        }
        // required_offload inverts the thresholds.
        for s in [1024usize, 16 * 1024, 64 * 1024] {
            if let Some(req) = th.required_offload(s) {
                prop_assert!(mm.m_part(r, s, req, budget) <= mm.gpu_mem as f64);
                if req > 0 {
                    prop_assert!(mm.m_part(r, s, req - 1, budget) > mm.gpu_mem as f64);
                }
            }
        }
    }

    /// Serving throughput decreases with output length for every system
    /// (longer generations cannot be faster per token).
    #[test]
    fn throughput_monotone_in_output(out_a in 2048usize..8192, extra in 1024usize..16384) {
        let sim = ServingSim::new(
            ModelConfig::deepseek_distill_llama_8b(),
            DeviceSpec::a100_80g(),
            2048,
        );
        for sys in [SystemKind::FullFlashInfer, SystemKind::ShadowKv, SystemKind::SpeContext] {
            let a = sim.throughput(sys, &Workload::new(2048, out_a, 4));
            let b = sim.throughput(sys, &Workload::new(2048, out_a + extra, 4));
            if !a.oom && !b.oom {
                prop_assert!(
                    b.tokens_per_s <= a.tokens_per_s * 1.02,
                    "{sys}: {} -> {}",
                    a.tokens_per_s,
                    b.tokens_per_s
                );
            }
        }
    }

    /// SpeContext's advantage over FlashInfer grows with generation
    /// length (the long-context-reasoning claim).
    #[test]
    fn ours_advantage_grows_with_generation(base in 4096usize..8192) {
        let sim = ServingSim::new(
            ModelConfig::deepseek_distill_llama_8b(),
            DeviceSpec::a100_80g(),
            2048,
        );
        let ratio = |out: usize| {
            let fi = sim.throughput(SystemKind::FullFlashInfer, &Workload::new(2048, out, 4));
            let us = sim.throughput(SystemKind::SpeContext, &Workload::new(2048, out, 4));
            us.tokens_per_s / fi.tokens_per_s.max(1e-9)
        };
        prop_assert!(ratio(base * 4) >= ratio(base) * 0.98);
    }
}
