//! Property tests pinning the fair scheduler to its references.
//!
//! The contract of the multi-tenant rework: a single-tenant trace with
//! preemption off is served **bit-for-bit** like the historical
//! single-FIFO scheduler ([`Scheduler::run_reference`], kept verbatim),
//! whatever the queue discipline — DRR only ever reorders *between*
//! tenants. On top of that, multi-tenant runs must conserve requests,
//! respect the preemption cap, and DRR must actually protect a short
//! interactive tenant from a long-generation tenant.

use proptest::prelude::*;
use spec_hwsim::DeviceSpec;
use spec_model::ModelConfig;
use spec_runtime::{
    FairConfig, PreemptionPolicy, QueueDiscipline, Request, ScheduleReport, Scheduler,
    SchedulerConfig, ServingSim, SystemKind,
};
use spec_tensor::SimRng;

fn sim() -> ServingSim {
    ServingSim::new(
        ModelConfig::deepseek_distill_llama_8b(),
        DeviceSpec::a100_80g(),
        2048,
    )
}

/// A deterministic single-tenant trace with mixed shapes.
fn single_tenant_trace(seed: u64, count: usize, rate: f64) -> Vec<Request> {
    let mut rng = SimRng::seed(seed);
    let mut t = 0.0f64;
    (0..count)
        .map(|id| {
            t += -(1.0 - rng.uniform() as f64).ln() / rate;
            let (input_len, output_len) = match rng.below(3) {
                0 => (512, 256),
                1 => (2048, 1024),
                _ => (4096, 2048),
            };
            Request {
                id,
                tenant: 0,
                input_len,
                output_len,
                arrival: t,
            }
        })
        .collect()
}

/// A two-tenant trace: tenant 1 long generations, tenant 0 shorts.
fn two_tenant_trace(seed: u64, count: usize, rate: f64) -> Vec<Request> {
    let mut rng = SimRng::seed(seed);
    let mut t = 0.0f64;
    (0..count)
        .map(|id| {
            t += -(1.0 - rng.uniform() as f64).ln() / rate;
            let long = rng.below(2) == 1;
            Request {
                id,
                tenant: long as u32,
                input_len: if long { 2048 } else { 512 },
                output_len: if long { 4096 } else { 256 },
                arrival: t,
            }
        })
        .collect()
}

fn assert_bitwise_equal(a: &ScheduleReport, b: &ScheduleReport) {
    assert_eq!(a, b);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    for (x, y) in a.completed.iter().zip(&b.completed) {
        assert_eq!(x.start.to_bits(), y.start.to_bits());
        assert_eq!(x.first_token.to_bits(), y.first_token.to_bits());
        assert_eq!(x.finish.to_bits(), y.finish.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single tenant + preemption off == the historical FIFO scheduler,
    /// bit-for-bit, under both disciplines and across strides/batches.
    #[test]
    fn single_tenant_matches_reference_bit_for_bit(
        seed in 0u64..1000,
        count in 2usize..16,
        rate in 1.0f64..16.0,
        stride in 1usize..20,
        max_batch in 1usize..12,
        drr in any::<bool>(),
    ) {
        let reqs = single_tenant_trace(seed, count, rate);
        let cfg = SchedulerConfig {
            max_batch,
            admission_stride: stride,
            fair: FairConfig {
                discipline: if drr {
                    QueueDiscipline::DeficitRoundRobin
                } else {
                    QueueDiscipline::Fifo
                },
                ..FairConfig::default()
            },
        };
        let s = Scheduler::new(sim(), SystemKind::SpeContext, cfg);
        assert_bitwise_equal(&s.run(&reqs), &s.run_reference(&reqs));
    }

    /// The equivalence also holds for a full-attention baseline, where
    /// memory (not the batch cap) gates admission.
    #[test]
    fn baseline_single_tenant_matches_reference(
        seed in 0u64..500,
        count in 2usize..10,
    ) {
        let reqs = single_tenant_trace(seed, count, 4.0);
        let s = Scheduler::new(
            sim(),
            SystemKind::FullFlashInfer,
            SchedulerConfig::default(),
        );
        assert_bitwise_equal(&s.run(&reqs), &s.run_reference(&reqs));
    }

    /// Multi-tenant preemptive runs conserve requests and bound
    /// preemptions, under every policy.
    #[test]
    fn preemptive_runs_conserve_requests(
        seed in 0u64..1000,
        count in 4usize..20,
        rate in 2.0f64..16.0,
    ) {
        for preemption in [
            PreemptionPolicy::None,
            PreemptionPolicy::LongestFirst,
            PreemptionPolicy::DeficitRoundRobin,
        ] {
            let reqs = two_tenant_trace(seed, count, rate);
            let cfg = SchedulerConfig {
                max_batch: 4,
                admission_stride: 4,
                fair: FairConfig {
                    discipline: QueueDiscipline::DeficitRoundRobin,
                    weights: vec![(0, 4), (1, 1)],
                    preemption,
                    ..FairConfig::default()
                },
            };
            let rep = Scheduler::new(sim(), SystemKind::SpeContext, cfg).run(&reqs);
            prop_assert_eq!(rep.completed.len() + rep.rejected, count);
            let mut ids: Vec<usize> = rep.completed.iter().map(|c| c.request.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), rep.completed.len(), "duplicated completion");
            for c in &rep.completed {
                prop_assert!(c.preemptions <= FairConfig::default().max_preemptions);
                prop_assert!(c.start >= c.request.arrival);
                prop_assert!(c.first_token > c.start - 1e-12);
                prop_assert!(c.finish >= c.first_token);
            }
        }
    }
}

/// DRR + preemption beats FIFO on the short tenant's worst-case TTFT in
/// a saturating two-tenant mix — the single-node version of the
/// `table3_fairness` acceptance claim.
#[test]
fn drr_preemption_protects_short_tenant_tail() {
    let reqs = two_tenant_trace(0xFA15, 24, 8.0);
    let fifo = Scheduler::new(
        sim(),
        SystemKind::SpeContext,
        SchedulerConfig {
            max_batch: 4,
            admission_stride: 4,
            fair: FairConfig {
                discipline: QueueDiscipline::Fifo,
                ..FairConfig::default()
            },
        },
    )
    .run(&reqs);
    let fair = Scheduler::new(
        sim(),
        SystemKind::SpeContext,
        SchedulerConfig {
            max_batch: 4,
            admission_stride: 4,
            fair: FairConfig {
                discipline: QueueDiscipline::DeficitRoundRobin,
                weights: vec![(0, 4), (1, 1)],
                preemption: PreemptionPolicy::DeficitRoundRobin,
                ..FairConfig::default()
            },
        },
    )
    .run(&reqs);
    let short_worst = |rep: &ScheduleReport| {
        rep.completed
            .iter()
            .filter(|c| c.request.tenant == 0)
            .map(|c| c.time_to_first_token())
            .fold(0.0f64, f64::max)
    };
    assert!(
        short_worst(&fair) < short_worst(&fifo),
        "fair {} vs fifo {}",
        short_worst(&fair),
        short_worst(&fifo)
    );
}
