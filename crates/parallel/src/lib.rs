//! Deterministic parallel compute substrate for the SpeContext workspace.
//!
//! A hand-rolled scoped worker pool over [`std::thread::scope`] (the build
//! environment has no crates.io access, so no rayon). Every primitive in
//! this crate upholds one contract:
//!
//! > **Results are bit-for-bit identical at 1 or N threads.**
//!
//! That holds because work is partitioned into *contiguous index bands*
//! and every output slot is written by exactly one worker — no shared
//! accumulators, no reduction trees, no work stealing. Changing the
//! thread count only changes band boundaries, never the per-element
//! computation or the order results are assembled in. Floating-point
//! reductions that must stay deterministic (e.g. k-means inertia) are
//! folded serially, in index order, over the parallel-computed parts.
//!
//! # Thread count
//!
//! Workers per call = `min(max_threads(), work items)`, where
//! [`max_threads`] resolves, in order:
//!
//! 1. a thread-local [`with_threads`] override (used by the determinism
//!    property tests to sweep thread counts inside one process),
//! 2. the `SPEC_THREADS` environment variable (parsed once; `0` or
//!    garbage falls through),
//! 3. [`std::thread::available_parallelism`].
//!
//! Workers are spawned per call inside a [`std::thread::scope`], which is
//! what keeps the API safe to use with borrowed data; spawn cost is tens
//! of microseconds, so callers gate parallel dispatch on a work-size
//! threshold and fall back to the serial path below it (the serial path
//! is always the `threads == 1` specialization of the same code).
//!
//! Workers inherit the caller's thread budget **divided by the worker
//! count** (at least 1), so nested fan-outs — a parallel kernel called
//! from inside a parallel sweep — degrade to serial instead of
//! oversubscribing the machine.
//!
//! # Example
//!
//! ```
//! let squares = spec_parallel::par_map_range(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Identical output at any thread count — that's the contract.
//! let at_one = spec_parallel::with_threads(1, || spec_parallel::par_map_range(8, |i| i * i));
//! assert_eq!(at_one, squares);
//! ```

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread override installed by [`with_threads`]; 0 = unset.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// `SPEC_THREADS`, parsed once per process.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SPEC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The maximum number of worker threads a parallel primitive may use.
///
/// Resolution order: [`with_threads`] override, then `SPEC_THREADS`, then
/// [`std::thread::available_parallelism`] (1 if unavailable).
pub fn max_threads() -> usize {
    let over = THREAD_OVERRIDE.with(Cell::get);
    if over > 0 {
        return over;
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `f` with [`max_threads`] pinned to `n` on the current thread.
///
/// The override is thread-local, so concurrent tests cannot race on it
/// (pool workers receive their own divided budget at spawn; see the
/// module docs). Restores the previous value on exit, including on
/// panic.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Splits `0..n` into `parts` contiguous ranges whose lengths differ by
/// at most one, in index order.
fn bands(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// Each index is computed by exactly one worker and results are
/// assembled band-by-band in index order, so the output is identical to
/// the serial `(0..n).map(f).collect()` at any thread count.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let budget = max_threads();
    let threads = budget.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let parts = bands(n, threads);
    let child_budget = worker_budget(budget, parts.len());
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|band| {
                let band = band.clone();
                let f = &f;
                s.spawn(move || with_threads(child_budget, || band.map(f).collect::<Vec<R>>()))
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("spec_parallel worker panicked"));
        }
    });
    out
}

/// The thread budget each of `workers` workers inherits: the caller's
/// budget divided evenly, at least 1. Nested parallel calls inside a
/// worker therefore cannot oversubscribe the machine — a fan-out that
/// already saturates the budget runs its inner fan-outs serially.
fn worker_budget(budget: usize, workers: usize) -> usize {
    (budget / workers.max(1)).max(1)
}

/// Maps `f` over a slice, returning results in item order. See
/// [`par_map_range`] for the determinism contract.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_range(items.len(), |i| f(&items[i]))
}

/// Hands each worker one contiguous, chunk-aligned *band* of `data`.
///
/// `data` is interpreted as consecutive chunks of `chunk_len` elements
/// (the last chunk may be shorter); `f` is invoked once per band with
/// the index of the band's first chunk and the band slice. Workers own
/// disjoint bands, so `f` may freely mutate its slice.
///
/// The caller must ensure `f`'s effect on a chunk does not depend on the
/// band it landed in — under that contract the result is independent of
/// the thread count. Use [`par_chunks_mut`] when no per-band setup (e.g.
/// packing a shared operand once per band) is needed.
///
/// # Panics
///
/// Panics if `chunk_len == 0` and `data` is nonempty.
pub fn par_bands_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let chunks = data.len().div_ceil(chunk_len);
    let budget = max_threads();
    let threads = budget.min(chunks);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let parts = bands(chunks, threads);
    let child_budget = worker_budget(budget, parts.len());
    std::thread::scope(|s| {
        let mut rest = data;
        for band in parts {
            let len = (band.len() * chunk_len).min(rest.len());
            let (mine, tail) = rest.split_at_mut(len);
            rest = tail;
            let f = &f;
            s.spawn(move || with_threads(child_budget, || f(band.start, mine)));
        }
    });
}

/// Applies `f` to every `chunk_len`-sized chunk of `data` in parallel
/// (the last chunk may be shorter). `f` receives the chunk index and the
/// chunk; chunks are disjoint, so the result is identical to the serial
/// `data.chunks_mut(chunk_len).enumerate()` loop at any thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_bands_mut(data, chunk_len, |first, band| {
        for (i, chunk) in band.chunks_mut(chunk_len).enumerate() {
            f(first + i, chunk);
        }
    });
}

/// Applies `f` to every element of `items` in parallel, passing the
/// element index. Equivalent to the serial `iter_mut().enumerate()` loop
/// at any thread count.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_chunks_mut(items, 1, |i, one| f(i, &mut one[0]));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 64, 65] {
            for parts in [1usize, 2, 3, 7, 64, 100] {
                let bs = bands(n, parts);
                let mut seen = 0;
                for b in &bs {
                    assert_eq!(b.start, seen, "contiguous");
                    seen = b.end;
                }
                assert_eq!(seen, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn par_map_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for t in [1usize, 2, 3, 7, 16] {
            let got = with_threads(t, || par_map(&items, |x| x * x + 1));
            assert_eq!(got, serial, "threads={t}");
        }
    }

    #[test]
    fn par_map_range_empty_and_single() {
        assert!(par_map_range(0, |i| i).is_empty());
        assert_eq!(par_map_range(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_once() {
        for t in [1usize, 2, 5, 8] {
            let mut data = vec![0u32; 23];
            with_threads(t, || {
                par_chunks_mut(&mut data, 4, |idx, chunk| {
                    for v in chunk.iter_mut() {
                        *v += 1 + idx as u32;
                    }
                });
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 1 + (i / 4) as u32, "threads={t} elem={i}");
            }
        }
    }

    #[test]
    fn par_bands_mut_chunk_aligned_and_disjoint() {
        for t in [1usize, 2, 3, 4, 9] {
            let mut data = vec![0u8; 30];
            with_threads(t, || {
                par_bands_mut(&mut data, 4, |first, band| {
                    assert_eq!(first * 4 % 4, 0);
                    for v in band.iter_mut() {
                        *v += 1;
                    }
                });
            });
            assert!(data.iter().all(|&v| v == 1), "threads={t}");
        }
    }

    #[test]
    fn par_for_each_mut_sees_global_indices() {
        let mut data = vec![0usize; 17];
        with_threads(4, || {
            par_for_each_mut(&mut data, |i, v| *v = i * 3);
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn workers_inherit_divided_budget() {
        // 4 workers out of a budget of 8 → each sees a budget of 2, so a
        // nested fan-out cannot oversubscribe the caller's allowance.
        let seen = with_threads(8, || par_map_range(4, |_| max_threads()));
        assert_eq!(seen, vec![2, 2, 2, 2]);
        // Saturated: 7 workers from a budget of 7 → nested calls serial.
        let seen = with_threads(7, || par_map_range(7, |_| max_threads()));
        assert_eq!(seen, vec![1; 7]);
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = max_threads();
        with_threads(5, || assert_eq!(max_threads(), 5));
        assert_eq!(max_threads(), before);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn with_threads_rejects_zero() {
        with_threads(0, || {});
    }
}
