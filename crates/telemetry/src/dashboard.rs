//! Terminal/markdown run dashboard: the at-a-glance summary of one
//! recorded run, designed to append to the `characterize` trace report
//! so a replay's input characterization and its observed behaviour land
//! in the same document.

use crate::event::{ticks_to_seconds, Event, EventKind};
use crate::histogram::{completion_time_histograms, LogHistogram, DEFAULT_SUB_BITS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counts one run's lifecycle edges and gauge peaks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Lifecycle edge counts, by event name.
    pub edges: BTreeMap<&'static str, u64>,
    /// Peak wait-queue depth per tenant.
    pub peak_queue_depth: BTreeMap<u32, u64>,
    /// Peak running-batch size.
    pub peak_batch: u64,
    /// Peak KV occupancy, bytes (with its capacity).
    pub peak_kv: (u64, u64),
    /// Last event tick, seconds.
    pub span_seconds: f64,
}

/// Scans an event stream into a [`RunSummary`].
pub fn summarize(events: &[Event]) -> RunSummary {
    let mut out = RunSummary::default();
    for event in events {
        out.span_seconds = out.span_seconds.max(ticks_to_seconds(event.tick));
        match event.kind {
            EventKind::QueueDepth { tenant, depth } => {
                let peak = out.peak_queue_depth.entry(tenant).or_insert(0);
                *peak = (*peak).max(depth);
            }
            EventKind::RunningBatch { size } => out.peak_batch = out.peak_batch.max(size),
            EventKind::KvOccupancy { used, capacity } => {
                if used >= out.peak_kv.0 {
                    out.peak_kv = (used, capacity);
                }
            }
            EventKind::DrrDeficit { .. } => {}
            ref kind => *out.edges.entry(kind.name()).or_insert(0) += 1,
        }
    }
    out
}

fn ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e3)
}

fn histogram_row(label: &str, h: &LogHistogram) -> String {
    format!(
        "| {label} | {} | {} | {} | {} | {} |\n",
        h.count(),
        ms(ticks_to_seconds(1) * h.mean()), // mean is in ticks
        ms(h.percentile_seconds(0.50)),
        ms(h.percentile_seconds(0.95)),
        ms(h.percentile_seconds(0.99)),
    )
}

/// Renders the markdown dashboard for one recorded run.
pub fn render_dashboard(events: &[Event]) -> String {
    let summary = summarize(events);
    let latency = completion_time_histograms(events, DEFAULT_SUB_BITS);
    let mut out = String::new();
    out.push_str("## Run dashboard\n\n");
    let _ = writeln!(
        out,
        "Simulated span: {:.3} s · events: {}\n",
        summary.span_seconds,
        events.len()
    );

    out.push_str("| lifecycle edge | count |\n|---|---|\n");
    for (name, count) in &summary.edges {
        let _ = writeln!(out, "| {name} | {count} |");
    }
    out.push('\n');

    out.push_str("### Completion time (enqueue → last token)\n\n");
    out.push_str("| tenant | completed | mean ms | p50 ms | p95 ms | p99 ms |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for (tenant, histogram) in &latency {
        let label = if *tenant == u32::MAX {
            "all".to_string()
        } else {
            format!("t{tenant}")
        };
        out.push_str(&histogram_row(&label, histogram));
    }
    out.push('\n');

    // Fault/recovery section, only when the run saw any such edge.
    let fault_edges = [
        "replica_crashed",
        "replica_recovered",
        "straggler_started",
        "straggler_ended",
        "retry_scheduled",
        "request_shed",
        "checkpoint_lost",
        "dead_lettered",
    ];
    if fault_edges.iter().any(|e| summary.edges.contains_key(e)) {
        out.push_str("### Faults & recovery\n\n");
        for name in fault_edges {
            if let Some(count) = summary.edges.get(name) {
                let _ = writeln!(out, "- {name}: {count}");
            }
        }
        out.push('\n');
    }

    out.push_str("### Peaks\n\n");
    let _ = writeln!(out, "- running batch: {}", summary.peak_batch);
    let _ = writeln!(
        out,
        "- kv occupancy: {} / {} bytes",
        summary.peak_kv.0, summary.peak_kv.1
    );
    for (tenant, depth) in &summary.peak_queue_depth {
        let _ = writeln!(out, "- queue depth t{tenant}: {depth}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind as K, Tick};

    fn ev(tick: Tick, kind: K) -> Event {
        Event {
            tick,
            replica: 0,
            kind,
        }
    }

    #[test]
    fn dashboard_counts_edges_and_peaks() {
        let events = vec![
            ev(
                0,
                K::Enqueued {
                    request: 1,
                    tenant: 0,
                },
            ),
            ev(
                2,
                K::QueueDepth {
                    tenant: 0,
                    depth: 3,
                },
            ),
            ev(3, K::RunningBatch { size: 2 }),
            ev(
                4,
                K::KvOccupancy {
                    used: 10,
                    capacity: 100,
                },
            ),
            ev(
                9,
                K::Completed {
                    request: 1,
                    tenant: 0,
                },
            ),
        ];
        let md = render_dashboard(&events);
        assert!(md.contains("| enqueued | 1 |"));
        assert!(md.contains("queue depth t0: 3"));
        assert!(md.contains("running batch: 2"));
        assert!(md.contains("| all | 1 |"));
    }
}
