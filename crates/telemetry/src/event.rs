//! Request-lifecycle events and the sinks they flow into.
//!
//! Instrumented code is generic over [`TelemetrySink`] and monomorphizes:
//! with the default [`NullSink`] every `emit` is a no-op and
//! [`TelemetrySink::enabled`] is a compile-time `false`, so gauge
//! snapshots behind `if sink.enabled()` cost nothing and the traced and
//! untraced code paths are the same machine code modulo dead stores. No
//! event ever carries wall-clock time — ticks come from the simulated
//! clock, so recorded streams are bit-for-bit reproducible.

use serde::{Deserialize, Serialize};

/// Simulated time, in ticks of [`TICK_NS`] nanoseconds.
pub type Tick = u64;

/// Nanoseconds per tick — a 1 µs grid, the same resolution the `SPTR`
/// trace format defaults to, and exactly the `ts` unit Chrome/Perfetto
/// `trace_event` JSON expects.
pub const TICK_NS: u64 = 1_000;

/// Converts simulator seconds to the telemetry tick grid (rounding to
/// the nearest tick).
pub fn seconds_to_ticks(seconds: f64) -> Tick {
    (seconds * (1e9 / TICK_NS as f64)).round() as Tick
}

/// Converts ticks back to seconds.
pub fn ticks_to_seconds(ticks: Tick) -> f64 {
    ticks as f64 * TICK_NS as f64 / 1e9
}

/// What happened. Lifecycle kinds identify the request; gauge kinds
/// snapshot a scheduler-internal quantity once per decode iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The request entered the cluster (router-side, pre-queue).
    Arrived { request: u64, tenant: u32 },
    /// The request joined a replica's tenant queue.
    Enqueued { request: u64, tenant: u32 },
    /// The request entered the running batch fresh (prefill charged).
    Admitted { request: u64, tenant: u32 },
    /// The request was evicted from the running batch.
    Preempted { request: u64, tenant: u32 },
    /// The evicted request's resident KV was saved over PCIe.
    CheckpointWritten { request: u64, bytes: u64 },
    /// A checkpointed request re-entered the batch (restore charged).
    Restored { request: u64, tenant: u32 },
    /// The request's first output token exists.
    FirstToken { request: u64, tenant: u32 },
    /// The request produced its last token.
    Completed { request: u64, tenant: u32 },
    /// The request could never be admitted, even alone.
    Rejected { request: u64, tenant: u32 },
    /// The autoscaler unparked a replica.
    ReplicaScaledUp,
    /// The autoscaler parked a replica.
    ReplicaScaledDown,
    /// The replica crashed: `lost` in-flight/queued requests enter the
    /// retry path, `checkpointed` requests hold host-side checkpoints
    /// eligible for restore on a surviving replica.
    ReplicaCrashed { lost: u32, checkpointed: u32 },
    /// The crashed replica restarted (probation may follow).
    ReplicaRecovered,
    /// A request lost to a crash (or failed migration) was scheduled to
    /// re-enter the cluster after backoff; `attempt` counts retries so
    /// far (1 = first retry).
    RetryScheduled {
        request: u64,
        tenant: u32,
        attempt: u32,
    },
    /// Admission control dropped the arrival: outstanding work crossed
    /// the tenant's shed watermark.
    RequestShed { request: u64, tenant: u32 },
    /// A checkpoint's KV transfer to a surviving replica failed; the
    /// request restarts from scratch via the retry path.
    CheckpointLost { request: u64, bytes: u64 },
    /// The request exhausted its retry budget and was dropped.
    DeadLettered { request: u64, tenant: u32 },
    /// A `Prefill`-role replica retired the request at its first token
    /// and emitted its resident KV (`bytes`, sparse-budget-capped) for
    /// the hop to a decode replica.
    HandoffEmitted {
        request: u64,
        tenant: u32,
        bytes: u64,
    },
    /// The interconnect finished moving the handoff's KV and the
    /// request joined a `Decode`-role replica's queue, preloaded.
    HandoffDelivered {
        request: u64,
        tenant: u32,
        bytes: u64,
    },
    /// The replica entered a straggler window: step costs are scaled by
    /// `permille`/1000 until [`EventKind::StragglerEnded`].
    StragglerStarted { permille: u32 },
    /// The replica's straggler window ended; costs return to nominal.
    StragglerEnded,
    /// Gauge: one tenant's wait-queue depth.
    QueueDepth { tenant: u32, depth: u64 },
    /// Gauge: requests in the running batch.
    RunningBatch { size: u64 },
    /// Gauge: KV block-allocator occupancy, bytes.
    KvOccupancy { used: u64, capacity: u64 },
    /// Gauge: one tenant's DRR deficit counter, tokens.
    DrrDeficit { tenant: u32, deficit: u64 },
}

impl EventKind {
    /// The request id, for lifecycle kinds.
    pub fn request(&self) -> Option<u64> {
        match *self {
            EventKind::Arrived { request, .. }
            | EventKind::Enqueued { request, .. }
            | EventKind::Admitted { request, .. }
            | EventKind::Preempted { request, .. }
            | EventKind::CheckpointWritten { request, .. }
            | EventKind::Restored { request, .. }
            | EventKind::FirstToken { request, .. }
            | EventKind::Completed { request, .. }
            | EventKind::Rejected { request, .. }
            | EventKind::RetryScheduled { request, .. }
            | EventKind::RequestShed { request, .. }
            | EventKind::CheckpointLost { request, .. }
            | EventKind::DeadLettered { request, .. }
            | EventKind::HandoffEmitted { request, .. }
            | EventKind::HandoffDelivered { request, .. } => Some(request),
            _ => None,
        }
    }

    /// The tenant id, where the kind carries one.
    pub fn tenant(&self) -> Option<u32> {
        match *self {
            EventKind::Arrived { tenant, .. }
            | EventKind::Enqueued { tenant, .. }
            | EventKind::Admitted { tenant, .. }
            | EventKind::Preempted { tenant, .. }
            | EventKind::Restored { tenant, .. }
            | EventKind::FirstToken { tenant, .. }
            | EventKind::Completed { tenant, .. }
            | EventKind::Rejected { tenant, .. }
            | EventKind::RetryScheduled { tenant, .. }
            | EventKind::RequestShed { tenant, .. }
            | EventKind::DeadLettered { tenant, .. }
            | EventKind::HandoffEmitted { tenant, .. }
            | EventKind::HandoffDelivered { tenant, .. }
            | EventKind::QueueDepth { tenant, .. }
            | EventKind::DrrDeficit { tenant, .. } => Some(tenant),
            _ => None,
        }
    }

    /// A short stable name (Perfetto event names, dashboard rows).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Arrived { .. } => "arrived",
            EventKind::Enqueued { .. } => "enqueued",
            EventKind::Admitted { .. } => "admitted",
            EventKind::Preempted { .. } => "preempted",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::Restored { .. } => "restored",
            EventKind::FirstToken { .. } => "first_token",
            EventKind::Completed { .. } => "completed",
            EventKind::Rejected { .. } => "rejected",
            EventKind::ReplicaScaledUp => "replica_scaled_up",
            EventKind::ReplicaScaledDown => "replica_scaled_down",
            EventKind::ReplicaCrashed { .. } => "replica_crashed",
            EventKind::ReplicaRecovered => "replica_recovered",
            EventKind::RetryScheduled { .. } => "retry_scheduled",
            EventKind::RequestShed { .. } => "request_shed",
            EventKind::CheckpointLost { .. } => "checkpoint_lost",
            EventKind::DeadLettered { .. } => "dead_lettered",
            EventKind::HandoffEmitted { .. } => "handoff_emitted",
            EventKind::HandoffDelivered { .. } => "handoff_delivered",
            EventKind::StragglerStarted { .. } => "straggler_started",
            EventKind::StragglerEnded => "straggler_ended",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::RunningBatch { .. } => "running_batch",
            EventKind::KvOccupancy { .. } => "kv_occupancy",
            EventKind::DrrDeficit { .. } => "drr_deficit",
        }
    }

    /// Whether this is a per-tick gauge snapshot (vs. a lifecycle edge).
    pub fn is_gauge(&self) -> bool {
        matches!(
            self,
            EventKind::QueueDepth { .. }
                | EventKind::RunningBatch { .. }
                | EventKind::KvOccupancy { .. }
                | EventKind::DrrDeficit { .. }
        )
    }
}

/// One telemetry event: a kind stamped with the simulated tick and the
/// replica it happened on (0 when scheduler-scope code emits it; a
/// tagged [`RecordingSink`] overwrites the stamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Simulated time, ticks.
    pub tick: Tick,
    /// Replica index the event belongs to.
    pub replica: u32,
    /// What happened.
    pub kind: EventKind,
}

/// Where instrumented code sends events. Implementations must be cheap:
/// the scheduler emits on every admission decision and decode iteration.
pub trait TelemetrySink {
    /// Accepts one event.
    fn emit(&mut self, event: Event);

    /// Whether emission has any effect — instrumentation guards
    /// *construction* of expensive payloads (gauge sweeps) behind this,
    /// so a disabled sink costs nothing.
    fn enabled(&self) -> bool {
        true
    }
}

/// The disabled sink: `emit` is a no-op and [`TelemetrySink::enabled`]
/// is `false`, so monomorphized instrumentation compiles away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn emit(&mut self, _event: Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

impl<S: TelemetrySink> TelemetrySink for &mut S {
    fn emit(&mut self, event: Event) {
        (**self).emit(event);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// `None` behaves like [`NullSink`]; `Some` forwards. This is how owners
/// of an optional sink (a replica that may or may not be traced) pass it
/// down without branching at every call site.
impl<S: TelemetrySink> TelemetrySink for Option<S> {
    fn emit(&mut self, event: Event) {
        if let Some(sink) = self {
            sink.emit(event);
        }
    }

    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(|s| s.enabled())
    }
}

/// A sink that buffers every event in emission order, optionally
/// stamping a fixed replica index on each — the per-replica buffer that
/// makes cluster tracing SPEC_THREADS-invariant: each replica's local
/// stream is deterministic regardless of which worker thread advanced
/// it, and [`merge_streams`] interleaves the buffers by a total order
/// that never consults thread identity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingSink {
    tag: Option<u32>,
    events: Vec<Event>,
}

impl RecordingSink {
    /// An empty, untagged recorder (events keep their own replica field).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty recorder that stamps `replica` on every event it
    /// receives — handed to scheduler-scope code that cannot know which
    /// replica it runs inside.
    pub fn tagged(replica: u32) -> Self {
        Self {
            tag: Some(replica),
            events: Vec::new(),
        }
    }

    /// Events recorded so far, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the recorder into its event buffer.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Drains the buffer, leaving the recorder (and its tag) in place.
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

impl TelemetrySink for RecordingSink {
    fn emit(&mut self, mut event: Event) {
        if let Some(tag) = self.tag {
            event.replica = tag;
        }
        self.events.push(event);
    }
}

/// Merges per-stream event buffers into one deterministic sequence,
/// ordered by `(tick, stream index, within-stream emission order)`.
///
/// Stream index — the buffer's position in `streams` — must itself be
/// thread-invariant (replica index, with any cluster-scope buffer at a
/// fixed position); given that, the merged order is identical at any
/// SPEC_THREADS because no key depends on which thread produced an
/// event. Per-stream tick monotonicity is *not* assumed (enqueues are
/// stamped at arrival time while the replica clock may already have
/// overshot), hence a full stable sort rather than a k-way merge.
pub fn merge_streams(streams: Vec<Vec<Event>>) -> Vec<Event> {
    let total = streams.iter().map(Vec::len).sum();
    let mut keyed: Vec<(usize, Event)> = Vec::with_capacity(total);
    for (index, stream) in streams.into_iter().enumerate() {
        keyed.extend(stream.into_iter().map(|e| (index, e)));
    }
    // Stable sort: ties on (tick, stream) keep emission order.
    keyed.sort_by_key(|&(index, event)| (event.tick, index));
    keyed.into_iter().map(|(_, event)| event).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: Tick, replica: u32, request: u64) -> Event {
        Event {
            tick,
            replica,
            kind: EventKind::Completed { request, tenant: 0 },
        }
    }

    #[test]
    fn tick_conversion_round_trips_on_the_grid() {
        for t in [0u64, 1, 999, 1_000_000, 86_400_000_000] {
            assert_eq!(seconds_to_ticks(ticks_to_seconds(t)), t);
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        let mut none: Option<RecordingSink> = None;
        assert!(!none.enabled());
        none.emit(ev(0, 0, 0));
        let mut some = Some(RecordingSink::new());
        assert!(some.enabled());
        some.emit(ev(3, 1, 7));
        assert_eq!(some.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn tagged_recorder_stamps_replica() {
        let mut sink = RecordingSink::tagged(5);
        sink.emit(ev(1, 0, 42));
        assert_eq!(sink.events()[0].replica, 5);
    }

    #[test]
    fn merge_orders_by_tick_then_stream_then_emission() {
        let a = vec![ev(5, 0, 1), ev(5, 0, 2), ev(1, 0, 3)];
        let b = vec![ev(5, 1, 4), ev(0, 1, 5)];
        let merged = merge_streams(vec![a, b]);
        let ids: Vec<u64> = merged.iter().filter_map(|e| e.kind.request()).collect();
        // tick 0 → 5(b); tick 1 → 3(a); tick 5 → stream 0 first in
        // emission order (1, 2), then stream 1 (4).
        assert_eq!(ids, vec![5, 3, 1, 2, 4]);
    }
}
