//! Observability for the serving stack: request-lifecycle events,
//! streaming histograms, Perfetto export, and run dashboards.
//!
//! The scheduler, replicas, cluster and autoscaler are generic over a
//! [`TelemetrySink`]; with the default [`NullSink`] instrumentation
//! monomorphizes to nothing (every result file and bit-for-bit pin in
//! the workspace is produced with the sink disabled and stays
//! byte-identical). Handing in a [`RecordingSink`] instead captures the
//! full per-request journey — queue → admit → preempt → checkpoint →
//! restore → first token → complete — stamped with simulated ticks,
//! never wall clock, so recorded streams are deterministic and
//! SPEC_THREADS-invariant.
//!
//! What you can do with a recorded stream:
//!
//! * [`perfetto::export_trace`] — Chrome/Perfetto `trace_event` JSON for
//!   `ui.perfetto.dev`: a track per replica and tenant, slices for
//!   running segments, counters for queue depth / batch size / KV
//!   occupancy / DRR deficits, flow arrows linking each preemption to
//!   its restore;
//! * [`dashboard::render_dashboard`] — a markdown run summary to append
//!   to the `characterize` report;
//! * [`histogram::completion_time_histograms`] — per-tenant streaming
//!   [`LogHistogram`]s of completion time, the distribution the replay
//!   regression gate (`replay_gate` in `spec_bench`) pins against a
//!   committed baseline.

pub mod dashboard;
pub mod event;
pub mod histogram;
pub mod perfetto;

pub use dashboard::{render_dashboard, summarize, RunSummary};
pub use event::{
    merge_streams, seconds_to_ticks, ticks_to_seconds, Event, EventKind, NullSink, RecordingSink,
    TelemetrySink, Tick, TICK_NS,
};
pub use histogram::{completion_time_histograms, LogHistogram, DEFAULT_SUB_BITS};
pub use perfetto::{export_trace, request_spans, RequestTimeline};
