//! Chrome/Perfetto `trace_event` JSON export.
//!
//! Turns a recorded event stream into a JSON document loadable in
//! `ui.perfetto.dev` (or `chrome://tracing`): one process per replica,
//! one thread per tenant, complete (`X`) slices for each request's
//! running segments, instant events for lifecycle edges, counter (`C`)
//! tracks for the gauges, and flow (`s`/`f`) arrows linking each
//! preemption to its restore. Timestamps are simulated microseconds —
//! the telemetry tick grid is 1 µs, exactly the `ts` unit the format
//! expects — so the viewer shows the run on the simulated clock.
//!
//! The slice layer is built through the shared
//! [`spec_hwsim::event::Span`] timeline model (the same type the ASCII
//! gantt renderer draws), so any other span producer can be exported the
//! same way.

use crate::event::{ticks_to_seconds, Event, EventKind, Tick};
use serde::Value;
use spec_hwsim::event::{Span, StreamId};
use std::collections::BTreeMap;

/// A span timeline extracted from an event stream: the shared
/// [`Span`] model plus the table mapping each span's [`StreamId`] back
/// to the `(replica, tenant)` track it belongs to.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestTimeline {
    /// Running segments (admit/restore → preempt/complete), in close
    /// order.
    pub spans: Vec<Span>,
    /// `streams[span.stream.0] == (replica, tenant)`.
    pub streams: Vec<(u32, u32)>,
}

impl RequestTimeline {
    /// The `(replica, tenant)` track of `span`.
    pub fn track(&self, span: &Span) -> (u32, u32) {
        self.streams[span.stream.0]
    }
}

/// Extracts each request's running segments from an event stream: a
/// span opens at `Admitted`/`Restored` and closes at the same request's
/// next `Preempted`/`Completed`. Streams are `(replica, tenant)` pairs
/// in sorted order, so the extraction is deterministic for a
/// deterministic stream. Segments still open when the stream ends are
/// dropped.
pub fn request_spans(events: &[Event]) -> RequestTimeline {
    let mut stream_of: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for event in events {
        if let EventKind::Admitted { tenant, .. } | EventKind::Restored { tenant, .. } = event.kind
        {
            let next = stream_of.len();
            stream_of.entry((event.replica, tenant)).or_insert(next);
        }
    }
    // Re-key in sorted-track order (BTreeMap iteration) so stream ids do
    // not depend on first-admission order.
    for (index, (_, slot)) in stream_of.iter_mut().enumerate() {
        *slot = index;
    }
    let streams: Vec<(u32, u32)> = stream_of.keys().copied().collect();

    let mut open: BTreeMap<u64, (usize, Tick)> = BTreeMap::new();
    let mut spans = Vec::new();
    for event in events {
        match event.kind {
            EventKind::Admitted { request, tenant } | EventKind::Restored { request, tenant } => {
                let stream = stream_of[&(event.replica, tenant)];
                open.insert(request, (stream, event.tick));
            }
            EventKind::Preempted { request, .. } | EventKind::Completed { request, .. } => {
                if let Some((stream, start)) = open.remove(&request) {
                    spans.push(Span::new(
                        StreamId(stream),
                        ticks_to_seconds(start),
                        ticks_to_seconds(event.tick),
                        format!("req {request}"),
                    ));
                }
            }
            _ => {}
        }
    }
    RequestTimeline { spans, streams }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn u(v: u64) -> Value {
    Value::UInt(v)
}

/// Perfetto thread id of a tenant track (0 is the replica's scheduler
/// track for process-scoped instants).
fn tenant_tid(tenant: u32) -> u64 {
    tenant as u64 + 1
}

fn metadata(pid: u64, tid: Option<u64>, what: &str, name: String) -> Value {
    let mut fields = vec![
        ("ph", s("M")),
        ("pid", u(pid)),
        ("name", s(what)),
        ("args", obj(vec![("name", s(name))])),
    ];
    if let Some(tid) = tid {
        fields.insert(2, ("tid", u(tid)));
    }
    obj(fields)
}

fn instant(event: &Event, tid: u64, scope: &str, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("ph", s("i")),
        ("name", s(event.kind.name())),
        ("cat", s("lifecycle")),
        ("pid", u(event.replica as u64)),
        ("tid", u(tid)),
        ("ts", u(event.tick)),
        ("s", s(scope)),
        ("args", obj(args)),
    ])
}

/// Serializes an event stream to Chrome/Perfetto `trace_event` JSON.
pub fn export_trace(events: &[Event]) -> String {
    let timeline = request_spans(events);
    let mut out: Vec<Value> = Vec::new();

    // Track metadata: process per replica, thread per tenant.
    let mut replicas: Vec<u32> = events.iter().map(|e| e.replica).collect();
    replicas.sort_unstable();
    replicas.dedup();
    for &replica in &replicas {
        out.push(metadata(
            replica as u64,
            None,
            "process_name",
            format!("replica {replica}"),
        ));
        out.push(metadata(
            replica as u64,
            Some(0),
            "thread_name",
            "scheduler".to_string(),
        ));
    }
    for &(replica, tenant) in &timeline.streams {
        out.push(metadata(
            replica as u64,
            Some(tenant_tid(tenant)),
            "thread_name",
            format!("tenant {tenant}"),
        ));
    }

    // Complete slices: each running segment of each request.
    for span in &timeline.spans {
        let (replica, tenant) = timeline.track(span);
        let ts = (span.start * 1e6).round() as u64;
        let end = (span.end * 1e6).round() as u64;
        out.push(obj(vec![
            ("ph", s("X")),
            ("name", s(span.label.clone())),
            ("cat", s("running")),
            ("pid", u(replica as u64)),
            ("tid", u(tenant_tid(tenant))),
            ("ts", u(ts)),
            ("dur", u(end.saturating_sub(ts))),
            ("args", obj(vec![("tenant", u(tenant as u64))])),
        ]));
    }

    // Instants, counters, preempt→restore and prefill→decode flows.
    let mut pending_flow: BTreeMap<u64, (u32, u32, Tick)> = BTreeMap::new();
    let mut pending_handoff: BTreeMap<u64, (u32, u32, Tick)> = BTreeMap::new();
    let mut flow_seq: BTreeMap<u64, u64> = BTreeMap::new();
    for event in events {
        let pid = event.replica as u64;
        match event.kind {
            EventKind::Arrived { request, tenant }
            | EventKind::Enqueued { request, tenant }
            | EventKind::FirstToken { request, tenant }
            | EventKind::Rejected { request, tenant } => {
                out.push(instant(
                    event,
                    tenant_tid(tenant),
                    "t",
                    vec![("request", u(request))],
                ));
            }
            EventKind::ReplicaScaledUp | EventKind::ReplicaScaledDown => {
                out.push(instant(event, 0, "p", Vec::new()));
            }
            EventKind::ReplicaCrashed { lost, checkpointed } => {
                out.push(instant(
                    event,
                    0,
                    "p",
                    vec![
                        ("lost", u(lost as u64)),
                        ("checkpointed", u(checkpointed as u64)),
                    ],
                ));
            }
            EventKind::ReplicaRecovered | EventKind::StragglerEnded => {
                out.push(instant(event, 0, "p", Vec::new()));
            }
            EventKind::StragglerStarted { permille } => {
                out.push(instant(
                    event,
                    0,
                    "p",
                    vec![("slowdown_permille", u(permille as u64))],
                ));
            }
            EventKind::RetryScheduled {
                request,
                tenant,
                attempt,
            } => {
                out.push(instant(
                    event,
                    tenant_tid(tenant),
                    "t",
                    vec![("request", u(request)), ("attempt", u(attempt as u64))],
                ));
            }
            EventKind::RequestShed { request, tenant }
            | EventKind::DeadLettered { request, tenant } => {
                out.push(instant(
                    event,
                    tenant_tid(tenant),
                    "t",
                    vec![("request", u(request))],
                ));
            }
            EventKind::CheckpointLost { request, bytes } => {
                out.push(instant(
                    event,
                    0,
                    "t",
                    vec![("request", u(request)), ("bytes", u(bytes))],
                ));
            }
            EventKind::HandoffEmitted {
                request,
                tenant,
                bytes,
            } => {
                out.push(instant(
                    event,
                    tenant_tid(tenant),
                    "t",
                    vec![("request", u(request)), ("bytes", u(bytes))],
                ));
                pending_handoff.insert(request, (event.replica, tenant, event.tick));
            }
            EventKind::HandoffDelivered {
                request,
                tenant,
                bytes,
            } => {
                out.push(instant(
                    event,
                    tenant_tid(tenant),
                    "t",
                    vec![("request", u(request)), ("bytes", u(bytes))],
                ));
                if let Some((from_replica, from_tenant, from_tick)) =
                    pending_handoff.remove(&request)
                {
                    let seq = flow_seq.entry(request).or_insert(0);
                    let id = request * 16 + *seq;
                    *seq += 1;
                    let flow = |ph: &str, pid: u64, tid: u64, ts: Tick| {
                        let mut fields = vec![
                            ("ph", s(ph)),
                            ("id", u(id)),
                            ("name", s("handoff")),
                            ("cat", s("handoff")),
                            ("pid", u(pid)),
                            ("tid", u(tid)),
                            ("ts", u(ts)),
                        ];
                        if ph == "f" {
                            fields.push(("bp", s("e")));
                        }
                        obj(fields)
                    };
                    out.push(flow(
                        "s",
                        from_replica as u64,
                        tenant_tid(from_tenant),
                        from_tick,
                    ));
                    out.push(flow("f", pid, tenant_tid(tenant), event.tick));
                }
            }
            EventKind::Preempted { request, tenant } => {
                pending_flow.insert(request, (event.replica, tenant, event.tick));
            }
            EventKind::Restored { request, tenant } => {
                if let Some((from_replica, from_tenant, from_tick)) = pending_flow.remove(&request)
                {
                    let seq = flow_seq.entry(request).or_insert(0);
                    let id = request * 16 + *seq;
                    *seq += 1;
                    let flow = |ph: &str, pid: u64, tid: u64, ts: Tick| {
                        let mut fields = vec![
                            ("ph", s(ph)),
                            ("id", u(id)),
                            ("name", s("preempt")),
                            ("cat", s("preempt")),
                            ("pid", u(pid)),
                            ("tid", u(tid)),
                            ("ts", u(ts)),
                        ];
                        if ph == "f" {
                            fields.push(("bp", s("e")));
                        }
                        obj(fields)
                    };
                    out.push(flow(
                        "s",
                        from_replica as u64,
                        tenant_tid(from_tenant),
                        from_tick,
                    ));
                    out.push(flow("f", pid, tenant_tid(tenant), event.tick));
                }
            }
            EventKind::QueueDepth { tenant, depth } => {
                out.push(obj(vec![
                    ("ph", s("C")),
                    ("name", s(format!("queue_depth/t{tenant}"))),
                    ("pid", u(pid)),
                    ("ts", u(event.tick)),
                    ("args", obj(vec![("depth", u(depth))])),
                ]));
            }
            EventKind::RunningBatch { size } => {
                out.push(obj(vec![
                    ("ph", s("C")),
                    ("name", s("running_batch")),
                    ("pid", u(pid)),
                    ("ts", u(event.tick)),
                    ("args", obj(vec![("size", u(size))])),
                ]));
            }
            EventKind::KvOccupancy { used, .. } => {
                out.push(obj(vec![
                    ("ph", s("C")),
                    ("name", s("kv_used_bytes")),
                    ("pid", u(pid)),
                    ("ts", u(event.tick)),
                    ("args", obj(vec![("used", u(used))])),
                ]));
            }
            EventKind::DrrDeficit { tenant, deficit } => {
                out.push(obj(vec![
                    ("ph", s("C")),
                    ("name", s(format!("drr_deficit/t{tenant}"))),
                    ("pid", u(pid)),
                    ("ts", u(event.tick)),
                    ("args", obj(vec![("deficit", u(deficit))])),
                ]));
            }
            _ => {}
        }
    }

    let doc = obj(vec![
        ("traceEvents", Value::Seq(out)),
        ("displayTimeUnit", s("ms")),
    ]);
    serde_json::to_string(&doc).expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind as K;

    fn ev(tick: Tick, replica: u32, kind: K) -> Event {
        Event {
            tick,
            replica,
            kind,
        }
    }

    fn lifecycle() -> Vec<Event> {
        vec![
            ev(
                0,
                0,
                K::Enqueued {
                    request: 1,
                    tenant: 0,
                },
            ),
            ev(
                10,
                0,
                K::Admitted {
                    request: 1,
                    tenant: 0,
                },
            ),
            ev(
                20,
                0,
                K::FirstToken {
                    request: 1,
                    tenant: 0,
                },
            ),
            ev(
                30,
                0,
                K::Preempted {
                    request: 1,
                    tenant: 0,
                },
            ),
            ev(
                30,
                0,
                K::CheckpointWritten {
                    request: 1,
                    bytes: 4096,
                },
            ),
            ev(
                50,
                0,
                K::Restored {
                    request: 1,
                    tenant: 0,
                },
            ),
            ev(
                80,
                0,
                K::Completed {
                    request: 1,
                    tenant: 0,
                },
            ),
        ]
    }

    #[test]
    fn spans_cover_running_segments() {
        let timeline = request_spans(&lifecycle());
        assert_eq!(timeline.spans.len(), 2);
        assert_eq!(timeline.streams, vec![(0, 0)]);
        let (a, b) = (&timeline.spans[0], &timeline.spans[1]);
        assert!((a.start - 10e-6).abs() < 1e-12 && (a.end - 30e-6).abs() < 1e-12);
        assert!((b.start - 50e-6).abs() < 1e-12 && (b.end - 80e-6).abs() < 1e-12);
    }

    #[test]
    fn export_is_valid_json_with_flows() {
        let json = export_trace(&lifecycle());
        let doc: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = match doc.get_field("traceEvents").unwrap() {
            Value::Seq(items) => items.clone(),
            other => panic!("traceEvents not a list: {other:?}"),
        };
        let phase = |e: &Value| match e.get_field("ph") {
            Ok(Value::Str(p)) => p.clone(),
            _ => panic!("event without ph"),
        };
        assert!(events.iter().any(|e| phase(e) == "X"));
        assert!(events.iter().any(|e| phase(e) == "s"));
        assert!(events.iter().any(|e| phase(e) == "f"));
        assert!(events.iter().any(|e| phase(e) == "M"));
    }

    #[test]
    fn handoffs_export_cross_replica_flows() {
        let events = vec![
            ev(
                10,
                0,
                K::HandoffEmitted {
                    request: 9,
                    tenant: 1,
                    bytes: 1 << 20,
                },
            ),
            ev(
                25,
                2,
                K::HandoffDelivered {
                    request: 9,
                    tenant: 1,
                    bytes: 1 << 20,
                },
            ),
        ];
        let json = export_trace(&events);
        assert!(json.contains("\"handoff_emitted\""));
        assert!(json.contains("\"handoff_delivered\""));
        assert!(json.contains("\"cat\":\"handoff\""));
        let doc: Value = serde_json::from_str(&json).expect("valid JSON");
        let items = match doc.get_field("traceEvents").unwrap() {
            Value::Seq(items) => items.clone(),
            other => panic!("traceEvents not a list: {other:?}"),
        };
        let phases: Vec<String> = items
            .iter()
            .filter_map(|e| match e.get_field("ph") {
                Ok(Value::Str(p)) => Some(p.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(phases.iter().filter(|p| *p == "s").count(), 1);
        assert_eq!(phases.iter().filter(|p| *p == "f").count(), 1);
    }

    #[test]
    fn counters_become_counter_events() {
        let events = vec![ev(
            5,
            2,
            K::QueueDepth {
                tenant: 3,
                depth: 7,
            },
        )];
        let json = export_trace(&events);
        assert!(json.contains("\"queue_depth/t3\""));
        assert!(json.contains("\"ph\":\"C\""));
    }
}
