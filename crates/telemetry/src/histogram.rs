//! Streaming log-bucketed histogram (HDR-style): bounded relative error,
//! constant-time record, mergeable across shards, serde-serializable —
//! percentiles without materializing every sample.
//!
//! Values are nonnegative integers (telemetry uses ticks). Layout: the
//! first `2^sub_bits` buckets are exact (width 1); above that, each
//! octave `[2^m, 2^(m+1))` splits into `2^sub_bits` linear sub-buckets,
//! so a bucket's width is at most `lower_bound / 2^sub_bits` and any
//! recorded value is off from its bucket midpoint by at most half that.

use crate::event::{seconds_to_ticks, ticks_to_seconds, Event, EventKind, Tick};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default sub-bucket resolution: 2^5 = 32 sub-buckets per octave,
/// ≤ ~3.1% bucket width (≤ ~1.6% midpoint error).
pub const DEFAULT_SUB_BITS: u32 = 5;

/// The log-linear histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// log2 of the sub-buckets per octave; fixed at construction and
    /// required to match for [`LogHistogram::merge`] and
    /// [`LogHistogram::max_cdf_deviation`].
    sub_bits: u32,
    /// Dense bucket counts, grown on demand.
    counts: Vec<u64>,
    /// Total recorded values.
    total: u64,
    /// Sum of recorded values (for the mean; f64 so huge tick sums
    /// cannot overflow).
    sum: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_SUB_BITS)
    }
}

impl LogHistogram {
    /// An empty histogram with `2^sub_bits` sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= sub_bits <= 16`.
    pub fn new(sub_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&sub_bits),
            "sub_bits must be in 1..=16, got {sub_bits}"
        );
        Self {
            sub_bits,
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
        }
    }

    /// The configured sub-bucket resolution.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Worst-case relative half-width of any bucket: the bound on how
    /// far a reported percentile can sit from the exact sample value.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The bucket index `value` falls into.
    fn bucket_index(&self, value: u64) -> usize {
        let k = self.sub_bits;
        let sub_count = 1u64 << k;
        if value < sub_count {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64; // >= k
        let octave = msb - k as u64 + 1;
        let mantissa = value >> (msb - k as u64); // in [2^k, 2^(k+1))
        (octave * sub_count + (mantissa - sub_count)) as usize
    }

    /// The inclusive `[lo, hi]` value range of bucket `index`.
    pub fn bucket_bounds(&self, index: usize) -> (u64, u64) {
        let k = self.sub_bits;
        let sub_count = 1usize << k;
        if index < sub_count {
            return (index as u64, index as u64);
        }
        let octave = (index / sub_count) as u64; // >= 1
        let sub = (index % sub_count) as u64;
        let lo = (sub_count as u64 + sub) << (octave - 1);
        let width = 1u64 << (octave - 1);
        (lo, lo + width - 1)
    }

    /// Bucket `index`'s representative value (the midpoint).
    fn bucket_mid(&self, index: usize) -> u64 {
        let (lo, hi) = self.bucket_bounds(index);
        lo + (hi - lo) / 2
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let index = self.bucket_index(value);
        if index >= self.counts.len() {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += n;
        self.total += n;
        self.sum += value as f64 * n as f64;
    }

    /// Records a duration in seconds on the telemetry tick grid.
    pub fn record_seconds(&mut self, seconds: f64) {
        self.record(seconds_to_ticks(seconds));
    }

    /// Folds another shard's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics when the resolutions differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge histograms with different sub_bits"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// The nearest-rank percentile (same convention as
    /// `spec_tensor::stats::percentile`: rank `⌊n·p⌋`, clamped), reported
    /// as the holding bucket's midpoint. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as f64 * p) as u64).min(self.total - 1);
        let mut cumulative = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative > rank {
                return self.bucket_mid(index);
            }
        }
        self.bucket_mid(self.counts.len().saturating_sub(1))
    }

    /// [`LogHistogram::percentile`] converted back to seconds.
    pub fn percentile_seconds(&self, p: f64) -> f64 {
        ticks_to_seconds(self.percentile(p))
    }

    /// The largest recorded bucket's upper bound (0 when empty).
    pub fn max_value(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| self.bucket_bounds(i).1)
            .unwrap_or(0)
    }

    /// Kolmogorov–Smirnov-style distance: the maximum over bucket edges
    /// of the absolute difference between the two empirical CDFs. Both
    /// empty → 0; exactly one empty → 1 (maximally diverged).
    ///
    /// # Panics
    ///
    /// Panics when the resolutions differ.
    pub fn max_cdf_deviation(&self, other: &LogHistogram) -> f64 {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot compare histograms with different sub_bits"
        );
        match (self.total, other.total) {
            (0, 0) => return 0.0,
            (0, _) | (_, 0) => return 1.0,
            _ => {}
        }
        let buckets = self.counts.len().max(other.counts.len());
        let (mut cum_a, mut cum_b, mut worst) = (0u64, 0u64, 0.0f64);
        for index in 0..buckets {
            cum_a += self.counts.get(index).copied().unwrap_or(0);
            cum_b += other.counts.get(index).copied().unwrap_or(0);
            let fa = cum_a as f64 / self.total as f64;
            let fb = cum_b as f64 / other.total as f64;
            worst = worst.max((fa - fb).abs());
        }
        worst
    }
}

/// Per-request completion-time (enqueue → last token) histograms built
/// straight from an event stream, keyed by tenant; key `u32::MAX` holds
/// the all-tenants aggregate. This is the distribution the replay
/// regression gate pins.
pub fn completion_time_histograms(events: &[Event], sub_bits: u32) -> BTreeMap<u32, LogHistogram> {
    let mut enqueued: BTreeMap<u64, Tick> = BTreeMap::new();
    let mut out: BTreeMap<u32, LogHistogram> = BTreeMap::new();
    for event in events {
        match event.kind {
            EventKind::Enqueued { request, .. } => {
                enqueued.entry(request).or_insert(event.tick);
            }
            EventKind::Completed { request, tenant } => {
                let Some(&start) = enqueued.get(&request) else {
                    continue;
                };
                let latency = event.tick.saturating_sub(start);
                out.entry(tenant)
                    .or_insert_with(|| LogHistogram::new(sub_bits))
                    .record(latency);
                out.entry(u32::MAX)
                    .or_insert_with(|| LogHistogram::new(sub_bits))
                    .record(latency);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = LogHistogram::new(5);
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn bucket_bounds_tile_the_axis() {
        let h = LogHistogram::new(3);
        let mut expected_lo = 0u64;
        for index in 0..200 {
            let (lo, hi) = h.bucket_bounds(index);
            assert_eq!(
                lo, expected_lo,
                "bucket {index} starts where the last ended"
            );
            assert!(hi >= lo);
            expected_lo = hi + 1;
        }
    }

    #[test]
    fn index_and_bounds_agree() {
        let h = LogHistogram::new(5);
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1000, 123_456, u32::MAX as u64] {
            let (lo, hi) = h.bucket_bounds(h.bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn relative_error_bound_holds() {
        let mut h = LogHistogram::new(5);
        let v = 1_234_567u64;
        h.record(v);
        let got = h.percentile(0.5);
        let err = (got as f64 - v as f64).abs() / v as f64;
        assert!(err <= h.relative_error(), "err {err}");
    }

    #[test]
    fn merge_equals_single() {
        let mut a = LogHistogram::new(5);
        let mut b = LogHistogram::new(5);
        let mut whole = LogHistogram::new(5);
        for v in 0..1000u64 {
            let x = v * v % 7919;
            whole.record(x);
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.max_cdf_deviation(&whole), 0.0);
    }

    #[test]
    fn cdf_deviation_sees_a_shift() {
        let mut a = LogHistogram::new(5);
        let mut b = LogHistogram::new(5);
        for v in 0..1000u64 {
            a.record(1000 + v);
            b.record((1000 + v) * 12 / 10); // +20% shift
        }
        assert!(a.max_cdf_deviation(&b) > 0.2);
        assert_eq!(a.max_cdf_deviation(&a), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = LogHistogram::new(5);
        for v in [3u64, 70, 70, 9000] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
