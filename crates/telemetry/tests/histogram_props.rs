//! Property tests pinning the streaming histogram to the exact
//! percentile arithmetic the rest of the codebase uses.
//!
//! 1. **Accuracy** — for any sample, the histogram's p50/p95/p99 agree
//!    with `spec_tensor::stats::percentile` (same nearest-rank
//!    convention, computed over the materialized sample) to within one
//!    bucket's relative error.
//! 2. **Mergeability** — sharding a sample across several histograms and
//!    merging them is indistinguishable from recording into one.

use proptest::prelude::*;
use spec_telemetry::LogHistogram;

/// Nonnegative samples spanning the exact region, the log-linear region,
/// and multi-octave spreads.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..=5_000_000_000, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Histogram percentiles track the exact nearest-rank percentile to
    /// within one bucket's relative width (plus one for integer edges).
    #[test]
    fn percentiles_match_exact_within_relative_error(values in samples(), sub_bits in 2u32..=8) {
        let mut h = LogHistogram::new(sub_bits);
        for &v in &values {
            h.record(v);
        }
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        for p in [0.5, 0.95, 0.99] {
            let exact = spec_tensor::stats::percentile(&as_f64, p);
            let got = h.percentile(p) as f64;
            // The reported value is the midpoint of the bucket holding
            // the exact nearest-rank sample; that bucket's width is at
            // most `exact * relative_error` (and 1 in the exact region).
            let tolerance = exact * h.relative_error() + 1.0;
            prop_assert!(
                (got - exact).abs() <= tolerance,
                "p{}: histogram {got} vs exact {exact} (tolerance {tolerance}, sub_bits {sub_bits})",
                (p * 100.0) as u32,
            );
        }
    }

    /// Merging shards is exactly equivalent to recording into a single
    /// histogram — counts, mean, percentiles, and CDF all agree.
    #[test]
    fn merged_shards_equal_single_histogram(values in samples(), shards in 2usize..=5) {
        let mut whole = LogHistogram::default();
        let mut parts: Vec<LogHistogram> = (0..shards).map(|_| LogHistogram::default()).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = parts.remove(0);
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert!(merged.max_cdf_deviation(&whole) == 0.0);
        for p in [0.5, 0.95, 0.99] {
            prop_assert_eq!(merged.percentile(p), whole.percentile(p));
        }
    }
}
