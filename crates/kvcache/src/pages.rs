//! Paged KV layout and page metadata vectors (Quest's preprocessing).
//!
//! Quest (Tang et al., 2024) partitions the KV cache into fixed-size pages
//! and represents each page by the element-wise minimum and maximum of its
//! key vectors. At retrieval time an upper bound of the page's attention
//! score is computed from the query sign pattern against those two
//! vectors; the top pages are loaded wholesale.

use spec_tensor::Matrix;

/// Default tokens per page (Quest uses 16).
pub const PAGE_SIZE_DEFAULT: usize = 16;

/// Page metadata over a key matrix.
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: usize,
    /// Per page: element-wise max of member keys.
    max_vec: Matrix,
    /// Per page: element-wise min of member keys.
    min_vec: Matrix,
    len: usize,
}

impl PageTable {
    /// Builds the table over `keys` (`seq x dim`).
    ///
    /// Traverses the row-major key matrix **row-outer** — each member
    /// key is streamed once, in memory order, folded channel-wise into
    /// the page's min/max rows — instead of the column-outer sweep
    /// retained as [`build_reference`](Self::build_reference), which
    /// strides `dim` floats between consecutive reads and re-walks the
    /// page once per channel. Per `(page, channel)` slot the fold still
    /// visits member rows in the same ascending order from ±∞, so the
    /// result is bit-identical (it is also the exact fold
    /// [`extend`](Self::extend) continues from).
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn build(keys: &Matrix, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        let n = keys.rows();
        let dim = keys.cols();
        let pages = n.div_ceil(page_size);
        let mut max_vec = Matrix::zeros(pages, dim);
        let mut min_vec = Matrix::zeros(pages, dim);
        for p in 0..pages {
            let start = p * page_size;
            let end = ((p + 1) * page_size).min(n);
            max_vec.row_mut(p).fill(f32::NEG_INFINITY);
            min_vec.row_mut(p).fill(f32::INFINITY);
            for r in start..end {
                let key = keys.row(r);
                for (m, &v) in max_vec.row_mut(p).iter_mut().zip(key) {
                    *m = m.max(v);
                }
                for (m, &v) in min_vec.row_mut(p).iter_mut().zip(key) {
                    *m = m.min(v);
                }
            }
        }
        Self {
            page_size,
            max_vec,
            min_vec,
            len: n,
        }
    }

    /// The original column-outer build, retained as the pinning
    /// reference for [`build`](Self::build) (and its `kernels` bench
    /// baseline).
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn build_reference(keys: &Matrix, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        let n = keys.rows();
        let dim = keys.cols();
        let pages = n.div_ceil(page_size);
        let mut max_vec = Matrix::zeros(pages, dim);
        let mut min_vec = Matrix::zeros(pages, dim);
        for p in 0..pages {
            let start = p * page_size;
            let end = ((p + 1) * page_size).min(n);
            for c in 0..dim {
                let mut mx = f32::NEG_INFINITY;
                let mut mn = f32::INFINITY;
                for r in start..end {
                    let v = keys.get(r, c);
                    mx = mx.max(v);
                    mn = mn.min(v);
                }
                max_vec.set(p, c, mx);
                min_vec.set(p, c, mn);
            }
        }
        Self {
            page_size,
            max_vec,
            min_vec,
            len: n,
        }
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.max_vec.rows()
    }

    /// Tokens per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tokens are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Token range of page `p` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn page_range(&self, p: usize) -> std::ops::Range<usize> {
        assert!(p < self.num_pages(), "page index out of range");
        let start = p * self.page_size;
        start..((p + 1) * self.page_size).min(self.len)
    }

    /// Appends `new_keys` (rows for tokens following the covered range),
    /// updating the last partial page's min/max in place and opening new
    /// pages as needed — instead of rebuilding the whole table.
    ///
    /// Bit-identical to `PageTable::build` over the concatenated keys:
    /// `build` folds each channel's min/max over member rows in ascending
    /// order from ±∞, and `extend` continues that fold from the stored
    /// partial result. To start an empty extendable table, build over a
    /// `0 x dim` matrix so the key dimension is known.
    ///
    /// # Panics
    ///
    /// Panics if `new_keys.cols()` differs from the table's key dimension.
    pub fn extend(&mut self, new_keys: &Matrix) {
        if new_keys.rows() == 0 {
            return;
        }
        let dim = self.max_vec.cols();
        assert_eq!(new_keys.cols(), dim, "key dim mismatch");
        for r in 0..new_keys.rows() {
            let page = self.len / self.page_size;
            if page == self.max_vec.rows() {
                self.max_vec.push_row(&vec![f32::NEG_INFINITY; dim]);
                self.min_vec.push_row(&vec![f32::INFINITY; dim]);
            }
            let key = new_keys.row(r);
            for (m, &v) in self.max_vec.row_mut(page).iter_mut().zip(key) {
                *m = m.max(v);
            }
            for (m, &v) in self.min_vec.row_mut(page).iter_mut().zip(key) {
                *m = m.min(v);
            }
            self.len += 1;
        }
    }

    /// Quest's upper-bound importance score of a page for a query:
    /// for each channel take `max(q_c * max_c, q_c * min_c)` and sum.
    /// This upper-bounds `q · k` for every key `k` in the page.
    ///
    /// Dispatches through the `spec_tensor::dispatch` registry (one
    /// shared body per tier, `SPEC_SIMD`-overridable): the element-wise
    /// `(q*hi).max(q*lo)` phase fills a small buffer (vectorizable, each
    /// element independent), and the final reduction walks that buffer in
    /// ascending channel order — the exact addition sequence of
    /// [`page_score_reference`](Self::page_score_reference), so every
    /// tier produces the same bits.
    pub fn page_score(&self, p: usize, query: &[f32]) -> f32 {
        assert_eq!(query.len(), self.max_vec.cols(), "query dim mismatch");
        page_score_kernel::dispatch(
            spec_tensor::dispatch::active_tier(),
            query,
            self.max_vec.row(p),
            self.min_vec.row(p),
        )
    }

    /// The reference page score: the plain sequential fold the table
    /// shipped with. [`page_score`](Self::page_score) is pinned
    /// bit-for-bit against this in the property tests.
    pub fn page_score_reference(&self, p: usize, query: &[f32]) -> f32 {
        assert_eq!(query.len(), self.max_vec.cols(), "query dim mismatch");
        let mx = self.max_vec.row(p);
        let mn = self.min_vec.row(p);
        query
            .iter()
            .zip(mx.iter().zip(mn))
            .map(|(q, (hi, lo))| (q * hi).max(q * lo))
            .sum()
    }

    /// Scores every page for a query.
    pub fn scores(&self, query: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.scores_into(query, &mut out);
        out
    }

    /// As [`scores`](Self::scores), into a reused buffer (cleared first).
    /// The dispatch tier is resolved once for the whole sweep.
    pub fn scores_into(&self, query: &[f32], out: &mut Vec<f32>) {
        assert_eq!(query.len(), self.max_vec.cols(), "query dim mismatch");
        out.clear();
        out.reserve(self.num_pages());
        let tier = spec_tensor::dispatch::active_tier();
        for p in 0..self.num_pages() {
            out.push(page_score_kernel::dispatch(
                tier,
                query,
                self.max_vec.row(p),
                self.min_vec.row(p),
            ));
        }
    }

    /// Scores every page with the reference kernel (for property pinning).
    pub fn scores_reference(&self, query: &[f32]) -> Vec<f32> {
        (0..self.num_pages())
            .map(|p| self.page_score_reference(p, query))
            .collect()
    }

    /// Expands a page selection into token positions, ascending.
    pub fn expand_pages(&self, pages: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = pages.iter().flat_map(|&p| self.page_range(p)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Channels processed per elementwise block. One block's contributions
/// are materialized before the sequential reduction consumes them, so
/// the multiply/max phase vectorizes while the addition order stays
/// exactly that of the reference fold.
const SCORE_CHUNK: usize = 64;

spec_tensor::dispatch_kernel! {
    /// Quest's page upper bound for one `(page, query)` pair: stages
    /// `(q*hi).max(q*lo)` per chunk, then folds the chunk in ascending
    /// channel order — the reference's exact addition sequence.
    page_score_kernel(query: &[f32], mx: &[f32], mn: &[f32]) -> f32 {
        let mut buf = [0.0f32; SCORE_CHUNK];
        let mut acc = 0.0f32;
        let mut i = 0;
        while i < query.len() {
            let c = SCORE_CHUNK.min(query.len() - i);
            for (((b, q), hi), lo) in buf[..c]
                .iter_mut()
                .zip(&query[i..i + c])
                .zip(&mx[i..i + c])
                .zip(&mn[i..i + c])
            {
                *b = (q * hi).max(q * lo);
            }
            for &v in &buf[..c] {
                acc += v;
            }
            i += c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, -1.0],
            &[2.0, 0.0],
            &[-1.0, 3.0],
            &[0.0, 1.0],
            &[5.0, 5.0],
        ])
    }

    #[test]
    fn builds_correct_page_count() {
        let t = PageTable::build(&keys(), 2);
        assert_eq!(t.num_pages(), 3);
        assert_eq!(t.page_range(2), 4..5);
    }

    #[test]
    fn minmax_vectors_bound_members() {
        let k = keys();
        let t = PageTable::build(&k, 2);
        // Page 0 covers rows 0..2: max = [2,0], min = [1,-1].
        assert_eq!(t.max_vec.row(0), &[2.0, 0.0]);
        assert_eq!(t.min_vec.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn page_score_upper_bounds_member_dots() {
        let k = keys();
        let t = PageTable::build(&k, 2);
        let q = [0.5, -2.0];
        for p in 0..t.num_pages() {
            let bound = t.page_score(p, &q);
            for r in t.page_range(p) {
                let dot: f32 = q.iter().zip(k.row(r)).map(|(a, b)| a * b).sum();
                assert!(bound >= dot - 1e-6, "page {p} row {r}: {bound} < {dot}");
            }
        }
    }

    #[test]
    fn expand_pages_returns_sorted_unique_positions() {
        let t = PageTable::build(&keys(), 2);
        let pos = t.expand_pages(&[2, 0]);
        assert_eq!(pos, vec![0, 1, 4]);
    }

    #[test]
    fn single_page_covers_everything() {
        let t = PageTable::build(&keys(), 100);
        assert_eq!(t.num_pages(), 1);
        assert_eq!(t.expand_pages(&[0]), vec![0, 1, 2, 3, 4]);
    }

    fn assert_tables_bit_equal(a: &PageTable, b: &PageTable) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.num_pages(), b.num_pages());
        for (x, y) in a
            .max_vec
            .as_slice()
            .iter()
            .zip(b.max_vec.as_slice())
            .chain(a.min_vec.as_slice().iter().zip(b.min_vec.as_slice()))
        {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn extend_matches_full_rebuild() {
        let k = keys();
        for split in 0..=k.rows() {
            let prefix =
                Matrix::from_vec(split, k.cols(), k.as_slice()[..split * k.cols()].to_vec());
            let suffix = Matrix::from_vec(
                k.rows() - split,
                k.cols(),
                k.as_slice()[split * k.cols()..].to_vec(),
            );
            let mut t = PageTable::build(&prefix, 2);
            t.extend(&suffix);
            assert_tables_bit_equal(&t, &PageTable::build(&k, 2));
        }
    }

    #[test]
    fn extend_from_empty_table_matches_build() {
        let k = keys();
        let mut t = PageTable::build(&Matrix::zeros(0, k.cols()), 2);
        for r in 0..k.rows() {
            t.extend(&Matrix::from_rows(&[k.row(r)]));
        }
        assert_tables_bit_equal(&t, &PageTable::build(&k, 2));
        assert_eq!(t.page_range(2), 4..5);
    }

    #[test]
    fn extend_of_nothing_is_a_no_op() {
        let mut t = PageTable::build(&keys(), 2);
        t.extend(&Matrix::zeros(0, 2));
        assert_tables_bit_equal(&t, &PageTable::build(&keys(), 2));
    }

    #[test]
    fn row_outer_build_matches_reference_bits() {
        let k = keys();
        for page_size in [1, 2, 3, 5, 100] {
            assert_tables_bit_equal(
                &PageTable::build(&k, page_size),
                &PageTable::build_reference(&k, page_size),
            );
        }
        let empty = Matrix::zeros(0, 3);
        assert_tables_bit_equal(
            &PageTable::build(&empty, 4),
            &PageTable::build_reference(&empty, 4),
        );
    }

    #[test]
    fn page_score_matches_reference_bits() {
        let t = PageTable::build(&keys(), 2);
        let queries = [[0.5f32, -2.0], [1.0, 1.0], [-3.25, 0.0]];
        for q in &queries {
            for p in 0..t.num_pages() {
                assert_eq!(
                    t.page_score(p, q).to_bits(),
                    t.page_score_reference(p, q).to_bits()
                );
            }
            assert_eq!(t.scores(q), t.scores_reference(q));
        }
    }

    #[test]
    fn scores_into_reuses_buffer() {
        let t = PageTable::build(&keys(), 2);
        let mut buf = vec![9.0; 17];
        t.scores_into(&[1.0, -1.0], &mut buf);
        assert_eq!(buf, t.scores(&[1.0, -1.0]));
    }
}
