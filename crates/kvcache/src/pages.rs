//! Paged KV layout and page metadata vectors (Quest's preprocessing).
//!
//! Quest (Tang et al., 2024) partitions the KV cache into fixed-size pages
//! and represents each page by the element-wise minimum and maximum of its
//! key vectors. At retrieval time an upper bound of the page's attention
//! score is computed from the query sign pattern against those two
//! vectors; the top pages are loaded wholesale.

use spec_tensor::Matrix;

/// Default tokens per page (Quest uses 16).
pub const PAGE_SIZE_DEFAULT: usize = 16;

/// Page metadata over a key matrix.
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: usize,
    /// Per page: element-wise max of member keys.
    max_vec: Matrix,
    /// Per page: element-wise min of member keys.
    min_vec: Matrix,
    len: usize,
}

impl PageTable {
    /// Builds the table over `keys` (`seq x dim`).
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn build(keys: &Matrix, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        let n = keys.rows();
        let dim = keys.cols();
        let pages = n.div_ceil(page_size);
        let mut max_vec = Matrix::zeros(pages, dim);
        let mut min_vec = Matrix::zeros(pages, dim);
        for p in 0..pages {
            let start = p * page_size;
            let end = ((p + 1) * page_size).min(n);
            for c in 0..dim {
                let mut mx = f32::NEG_INFINITY;
                let mut mn = f32::INFINITY;
                for r in start..end {
                    let v = keys.get(r, c);
                    mx = mx.max(v);
                    mn = mn.min(v);
                }
                max_vec.set(p, c, mx);
                min_vec.set(p, c, mn);
            }
        }
        Self {
            page_size,
            max_vec,
            min_vec,
            len: n,
        }
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.max_vec.rows()
    }

    /// Tokens per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tokens are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Token range of page `p` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn page_range(&self, p: usize) -> std::ops::Range<usize> {
        assert!(p < self.num_pages(), "page index out of range");
        let start = p * self.page_size;
        start..((p + 1) * self.page_size).min(self.len)
    }

    /// Quest's upper-bound importance score of a page for a query:
    /// for each channel take `max(q_c * max_c, q_c * min_c)` and sum.
    /// This upper-bounds `q · k` for every key `k` in the page.
    pub fn page_score(&self, p: usize, query: &[f32]) -> f32 {
        assert_eq!(query.len(), self.max_vec.cols(), "query dim mismatch");
        let mx = self.max_vec.row(p);
        let mn = self.min_vec.row(p);
        query
            .iter()
            .zip(mx.iter().zip(mn))
            .map(|(q, (hi, lo))| (q * hi).max(q * lo))
            .sum()
    }

    /// Scores every page for a query.
    pub fn scores(&self, query: &[f32]) -> Vec<f32> {
        (0..self.num_pages())
            .map(|p| self.page_score(p, query))
            .collect()
    }

    /// Expands a page selection into token positions, ascending.
    pub fn expand_pages(&self, pages: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = pages.iter().flat_map(|&p| self.page_range(p)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, -1.0],
            &[2.0, 0.0],
            &[-1.0, 3.0],
            &[0.0, 1.0],
            &[5.0, 5.0],
        ])
    }

    #[test]
    fn builds_correct_page_count() {
        let t = PageTable::build(&keys(), 2);
        assert_eq!(t.num_pages(), 3);
        assert_eq!(t.page_range(2), 4..5);
    }

    #[test]
    fn minmax_vectors_bound_members() {
        let k = keys();
        let t = PageTable::build(&k, 2);
        // Page 0 covers rows 0..2: max = [2,0], min = [1,-1].
        assert_eq!(t.max_vec.row(0), &[2.0, 0.0]);
        assert_eq!(t.min_vec.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn page_score_upper_bounds_member_dots() {
        let k = keys();
        let t = PageTable::build(&k, 2);
        let q = [0.5, -2.0];
        for p in 0..t.num_pages() {
            let bound = t.page_score(p, &q);
            for r in t.page_range(p) {
                let dot: f32 = q.iter().zip(k.row(r)).map(|(a, b)| a * b).sum();
                assert!(bound >= dot - 1e-6, "page {p} row {r}: {bound} < {dot}");
            }
        }
    }

    #[test]
    fn expand_pages_returns_sorted_unique_positions() {
        let t = PageTable::build(&keys(), 2);
        let pos = t.expand_pages(&[2, 0]);
        assert_eq!(pos, vec![0, 1, 4]);
    }

    #[test]
    fn single_page_covers_everything() {
        let t = PageTable::build(&keys(), 100);
        assert_eq!(t.num_pages(), 1);
        assert_eq!(t.expand_pages(&[0]), vec![0, 1, 2, 3, 4]);
    }
}
