//! Elastic loading: the set-difference transfer planner of Section 5.4.
//!
//! Adjacent decode steps select highly overlapping KV positions
//! (paper Fig. 6(b): >80% overlap). The elastic loader therefore keeps the
//! previous step's selection resident on the GPU and transfers only the
//! difference: positions in `S_now − S_last` are fetched, slots holding
//! `S_last − S_now` are overwritten in place (`Tensor.copy_()` in the
//! paper). Under a fixed budget `|S_last| == |S_now|` both differences
//! have equal cardinality, so the plan is a slot-for-slot replacement.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A transfer plan produced by [`ResidentSet::plan`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffPlan {
    /// Positions to fetch from the lower tier (`S_now − S_last`), ascending.
    pub fetch: Vec<usize>,
    /// Resident slots to overwrite, parallel to `fetch` (slot `evict[i]`
    /// receives position `fetch[i]`).
    pub evict_slots: Vec<usize>,
    /// Positions that stay resident (`S_now ∩ S_last`), ascending.
    pub reused: Vec<usize>,
}

impl DiffPlan {
    /// Number of positions transferred.
    pub fn transfer_count(&self) -> usize {
        self.fetch.len()
    }

    /// Fraction of the new selection served from residency (0..=1);
    /// 1.0 when the selection is empty.
    pub fn reuse_fraction(&self) -> f32 {
        let total = self.fetch.len() + self.reused.len();
        if total == 0 {
            1.0
        } else {
            self.reused.len() as f32 / total as f32
        }
    }
}

/// The GPU-resident selection: budget slots holding KV positions.
///
/// # Example
///
/// ```
/// use spec_kvcache::ResidentSet;
///
/// let mut rs = ResidentSet::new(4);
/// let p1 = rs.plan(&[1, 2, 3, 4]);
/// assert_eq!(p1.transfer_count(), 4); // cold start
/// rs.apply(&p1);
/// let p2 = rs.plan(&[2, 3, 4, 9]);
/// assert_eq!(p2.transfer_count(), 1); // only 9 is new
/// rs.apply(&p2);
/// assert!(rs.contains(9));
/// ```
#[derive(Debug, Clone)]
pub struct ResidentSet {
    /// slot -> position (usize::MAX = empty slot).
    slots: Vec<usize>,
    /// position -> slot.
    index: HashMap<usize, usize>,
}

/// Sentinel for an unoccupied slot.
const EMPTY: usize = usize::MAX;

impl ResidentSet {
    /// Creates an empty resident set with `budget` slots.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(budget: usize) -> Self {
        assert!(budget > 0, "budget must be positive");
        Self {
            slots: vec![EMPTY; budget],
            index: HashMap::with_capacity(budget),
        }
    }

    /// The slot budget.
    pub fn budget(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.index.len()
    }

    /// Whether `pos` is resident.
    pub fn contains(&self, pos: usize) -> bool {
        self.index.contains_key(&pos)
    }

    /// Currently resident positions, ascending.
    pub fn positions(&self) -> Vec<usize> {
        let mut p: Vec<usize> = self.index.keys().copied().collect();
        p.sort_unstable();
        p
    }

    /// Computes the minimal transfer plan to make `wanted` resident.
    ///
    /// # Panics
    ///
    /// Panics if `wanted` exceeds the budget or contains duplicates.
    pub fn plan(&self, wanted: &[usize]) -> DiffPlan {
        assert!(
            wanted.len() <= self.budget(),
            "selection {} exceeds budget {}",
            wanted.len(),
            self.budget()
        );
        let wanted_set: std::collections::HashSet<usize> = wanted.iter().copied().collect();
        assert_eq!(wanted_set.len(), wanted.len(), "duplicate positions");

        let mut fetch: Vec<usize> = wanted
            .iter()
            .copied()
            .filter(|p| !self.index.contains_key(p))
            .collect();
        fetch.sort_unstable();
        let mut reused: Vec<usize> = wanted
            .iter()
            .copied()
            .filter(|p| self.index.contains_key(p))
            .collect();
        reused.sort_unstable();

        // Slots to overwrite: empty slots first, then slots holding
        // positions not in `wanted` (no needless eviction under budget).
        let mut evictable: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, &pos)| pos == EMPTY)
            .map(|(slot, _)| slot)
            .collect();
        evictable.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, &pos)| pos != EMPTY && !wanted_set.contains(&pos))
                .map(|(slot, _)| slot),
        );
        let evict_slots: Vec<usize> = evictable.into_iter().take(fetch.len()).collect();
        debug_assert_eq!(evict_slots.len(), fetch.len());
        DiffPlan {
            fetch,
            evict_slots,
            reused,
        }
    }

    /// Applies a plan produced by [`plan`](Self::plan) on the current state.
    ///
    /// # Panics
    ///
    /// Panics if the plan is inconsistent with the current state (wrong
    /// slot contents), which indicates it was produced for another state.
    pub fn apply(&mut self, plan: &DiffPlan) {
        for (&pos, &slot) in plan.fetch.iter().zip(&plan.evict_slots) {
            let old = self.slots[slot];
            if old != EMPTY {
                let removed = self.index.remove(&old);
                assert!(removed.is_some(), "plan/state mismatch at slot {slot}");
            }
            self.slots[slot] = pos;
            self.index.insert(pos, slot);
        }
    }

    /// The slot currently holding `pos`, if resident.
    pub fn slot_of(&self, pos: usize) -> Option<usize> {
        self.index.get(&pos).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_fetches_everything() {
        let rs = ResidentSet::new(3);
        let plan = rs.plan(&[5, 1, 9]);
        assert_eq!(plan.fetch, vec![1, 5, 9]);
        assert_eq!(plan.reused, Vec::<usize>::new());
        assert_eq!(plan.reuse_fraction(), 0.0);
    }

    #[test]
    fn full_overlap_transfers_nothing() {
        let mut rs = ResidentSet::new(3);
        let p = rs.plan(&[1, 2, 3]);
        rs.apply(&p);
        let p2 = rs.plan(&[3, 2, 1]);
        assert_eq!(p2.transfer_count(), 0);
        assert_eq!(p2.reuse_fraction(), 1.0);
    }

    #[test]
    fn partial_overlap_fetches_difference_only() {
        let mut rs = ResidentSet::new(4);
        rs.apply(&rs.plan(&[10, 20, 30, 40]));
        let p = rs.plan(&[20, 30, 40, 50]);
        assert_eq!(p.fetch, vec![50]);
        assert_eq!(p.reused, vec![20, 30, 40]);
        // Fixed budget: |S_last − S_now| == |S_now − S_last|.
        assert_eq!(p.evict_slots.len(), p.fetch.len());
        rs.apply(&p);
        assert!(!rs.contains(10));
        assert!(rs.contains(50));
    }

    #[test]
    fn eviction_prefers_stale_slots() {
        let mut rs = ResidentSet::new(3);
        rs.apply(&rs.plan(&[1, 2, 3]));
        let p = rs.plan(&[2, 3, 7]);
        // The evicted slot must be the one holding 1.
        let slot_of_1 = rs.slot_of(1).unwrap();
        assert_eq!(p.evict_slots, vec![slot_of_1]);
    }

    #[test]
    fn smaller_selection_is_allowed() {
        let mut rs = ResidentSet::new(4);
        rs.apply(&rs.plan(&[1, 2]));
        assert_eq!(rs.occupied(), 2);
        let p = rs.plan(&[2, 3, 4]);
        assert_eq!(p.fetch, vec![3, 4]);
        rs.apply(&p);
        assert_eq!(rs.occupied(), 4); // 1 was never evicted: budget allows
    }

    #[test]
    #[should_panic(expected = "exceeds budget")]
    fn over_budget_selection_rejected() {
        let rs = ResidentSet::new(2);
        let _ = rs.plan(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_positions_rejected() {
        let rs = ResidentSet::new(3);
        let _ = rs.plan(&[1, 1, 2]);
    }

    #[test]
    fn apply_then_positions_equals_wanted_superset() {
        let mut rs = ResidentSet::new(4);
        rs.apply(&rs.plan(&[4, 8, 15, 16]));
        let wanted = vec![8, 15, 23, 42];
        let p = rs.plan(&wanted);
        rs.apply(&p);
        let resident = rs.positions();
        for w in &wanted {
            assert!(resident.contains(w));
        }
    }
}
