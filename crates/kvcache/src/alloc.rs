//! Block-based KV memory allocator.
//!
//! Models the difference between HF-eager-style *contiguous*
//! preallocation (each request reserves max-context KV up front) and
//! vLLM/FlashInfer-style *paged* allocation (fixed-size blocks allocated
//! on demand). This is the mechanism behind the serving simulator's
//! batch caps: eager runs out of reservable memory long before paged
//! allocators do, which is why the paper's Table 3 runs eager at batch 4.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Allocation discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Reserve the maximum context's KV bytes at admission.
    ContiguousReserve {
        /// Max context tokens reserved per request.
        max_context: usize,
    },
    /// Allocate fixed-size token blocks on demand.
    Paged {
        /// Tokens per block.
        block_tokens: usize,
    },
}

/// A request's allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AllocId(pub usize);

/// The allocator: tracks bytes against a capacity.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    policy: AllocPolicy,
    bytes_per_token: u64,
    capacity: u64,
    used: u64,
    next_id: usize,
    /// Per allocation: (tokens committed, bytes held).
    live: HashMap<AllocId, (usize, u64)>,
}

impl BlockAllocator {
    /// Creates an allocator over `capacity` bytes of KV memory.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_token == 0`.
    pub fn new(policy: AllocPolicy, bytes_per_token: u64, capacity: u64) -> Self {
        assert!(bytes_per_token > 0, "bytes per token must be positive");
        Self {
            policy,
            bytes_per_token,
            capacity,
            used: 0,
            next_id: 0,
            live: HashMap::new(),
        }
    }

    /// KV bytes one token costs under this allocator.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// The total KV capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Admits a request with an initial `tokens`-token cache.
    /// Returns `None` when it does not fit.
    pub fn admit(&mut self, tokens: usize) -> Option<AllocId> {
        let bytes = self.bytes_for(tokens.max(1));
        if self.used + bytes > self.capacity {
            return None;
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.used += bytes;
        self.live.insert(id, (tokens, bytes));
        Some(id)
    }

    /// Extends an allocation by `extra` tokens. Returns `false` (leaving
    /// the allocation unchanged) when growth does not fit.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn grow(&mut self, id: AllocId, extra: usize) -> bool {
        let (tokens, bytes) = *self.live.get(&id).expect("unknown allocation");
        let new_tokens = tokens + extra;
        let new_bytes = self.bytes_for(new_tokens);
        let delta = new_bytes.saturating_sub(bytes);
        if self.used + delta > self.capacity {
            return false;
        }
        self.used += delta;
        self.live.insert(id, (new_tokens, new_bytes));
        true
    }

    /// Releases an allocation.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn release(&mut self, id: AllocId) {
        let (_, bytes) = self.live.remove(&id).expect("unknown allocation");
        self.used -= bytes;
    }

    /// Internal fragmentation: reserved-but-unused bytes across live
    /// allocations (the contiguous policy's waste).
    pub fn internal_fragmentation(&self) -> u64 {
        self.live
            .values()
            .map(|&(tokens, bytes)| bytes - tokens as u64 * self.bytes_per_token)
            .sum()
    }

    fn bytes_for(&self, tokens: usize) -> u64 {
        match self.policy {
            AllocPolicy::ContiguousReserve { max_context } => {
                max_context.max(tokens) as u64 * self.bytes_per_token
            }
            AllocPolicy::Paged { block_tokens } => {
                (tokens.div_ceil(block_tokens) * block_tokens) as u64 * self.bytes_per_token
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BPT: u64 = 1000;

    #[test]
    fn paged_admits_many_short_requests() {
        let mut a = BlockAllocator::new(AllocPolicy::Paged { block_tokens: 16 }, BPT, 1_000_000);
        let mut ids = Vec::new();
        while let Some(id) = a.admit(100) {
            ids.push(id);
            if ids.len() > 100 {
                break;
            }
        }
        // 100 tokens round to 112 per request -> ~8 requests per MB.
        assert!(ids.len() >= 8, "admitted {}", ids.len());
    }

    #[test]
    fn contiguous_reserve_admits_far_fewer() {
        let mut paged =
            BlockAllocator::new(AllocPolicy::Paged { block_tokens: 16 }, BPT, 1_000_000);
        let mut contig = BlockAllocator::new(
            AllocPolicy::ContiguousReserve { max_context: 800 },
            BPT,
            1_000_000,
        );
        let mut np = 0;
        while paged.admit(100).is_some() {
            np += 1;
        }
        let mut nc = 0;
        while contig.admit(100).is_some() {
            nc += 1;
        }
        assert!(np > 4 * nc, "paged {np} vs contiguous {nc}");
    }

    #[test]
    fn growth_within_reservation_is_free_for_contiguous() {
        let mut a = BlockAllocator::new(
            AllocPolicy::ContiguousReserve { max_context: 500 },
            BPT,
            1_000_000,
        );
        let id = a.admit(100).unwrap();
        let before = a.used_bytes();
        assert!(a.grow(id, 300));
        assert_eq!(a.used_bytes(), before, "growth inside the reservation");
    }

    #[test]
    fn paged_growth_allocates_blocks() {
        let mut a = BlockAllocator::new(AllocPolicy::Paged { block_tokens: 16 }, BPT, 1_000_000);
        let id = a.admit(16).unwrap();
        let before = a.used_bytes();
        assert!(a.grow(id, 1));
        assert_eq!(a.used_bytes(), before + 16 * BPT);
    }

    #[test]
    fn release_returns_bytes() {
        let mut a = BlockAllocator::new(AllocPolicy::Paged { block_tokens: 8 }, BPT, 100_000);
        let id = a.admit(64).unwrap();
        assert!(a.used_bytes() > 0);
        a.release(id);
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn fragmentation_measured_correctly() {
        let mut a = BlockAllocator::new(
            AllocPolicy::ContiguousReserve { max_context: 1000 },
            BPT,
            10_000_000,
        );
        a.admit(100).unwrap();
        assert_eq!(a.internal_fragmentation(), 900 * BPT);
        let mut p = BlockAllocator::new(AllocPolicy::Paged { block_tokens: 16 }, BPT, 10_000_000);
        p.admit(100).unwrap();
        assert_eq!(p.internal_fragmentation(), 12 * BPT); // 112 - 100
    }

    #[test]
    fn failed_growth_leaves_state_unchanged() {
        let mut a = BlockAllocator::new(AllocPolicy::Paged { block_tokens: 8 }, BPT, 10_000);
        let id = a.admit(8).unwrap();
        let before = a.used_bytes();
        assert!(!a.grow(id, 1000));
        assert_eq!(a.used_bytes(), before);
    }
}
