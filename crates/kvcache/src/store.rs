//! Tiered KV store: which layer's cache lives where, and how big it is.
//!
//! The adaptive memory manager (Section 6) moves whole layers between GPU
//! HBM and CPU DRAM as the sequence grows. This store is the bookkeeping
//! object it manipulates; byte sizes follow Table 1's symbols.

use serde::{Deserialize, Serialize};

/// A memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTier {
    /// GPU high-bandwidth memory.
    Gpu,
    /// CPU DRAM (offload target).
    Cpu,
}

impl std::fmt::Display for MemoryTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MemoryTier::Gpu => "GPU",
            MemoryTier::Cpu => "CPU",
        })
    }
}

/// Aggregate sizes per tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierStats {
    /// Bytes of KV cache resident on the GPU.
    pub gpu_bytes: u64,
    /// Bytes of KV cache resident on the CPU.
    pub cpu_bytes: u64,
    /// Layers whose cache is on the GPU.
    pub gpu_layers: usize,
    /// Layers whose cache is on the CPU.
    pub cpu_layers: usize,
}

/// Per-layer placement and size tracking for one request's KV cache.
///
/// # Example
///
/// ```
/// use spec_kvcache::{KvStore, MemoryTier};
///
/// let mut store = KvStore::new(4, 1024); // 4 layers, 1 KiB per token-layer
/// store.append_tokens(10);
/// assert_eq!(store.stats().gpu_bytes, 4 * 10 * 1024);
/// store.offload_layer(3);
/// assert_eq!(store.stats().cpu_layers, 1);
/// ```
#[derive(Debug, Clone)]
pub struct KvStore {
    placement: Vec<MemoryTier>,
    bytes_per_token_layer: u64,
    seq_len: usize,
}

impl KvStore {
    /// Creates a store with all layers on the GPU and zero tokens.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `bytes_per_token_layer == 0`.
    pub fn new(layers: usize, bytes_per_token_layer: u64) -> Self {
        assert!(layers > 0, "store requires at least one layer");
        assert!(
            bytes_per_token_layer > 0,
            "bytes per token must be positive"
        );
        Self {
            placement: vec![MemoryTier::Gpu; layers],
            bytes_per_token_layer,
            seq_len: 0,
        }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.placement.len()
    }

    /// Current sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Bytes of KV cache per token per layer.
    pub fn bytes_per_token_layer(&self) -> u64 {
        self.bytes_per_token_layer
    }

    /// Appends `n` tokens' worth of KV entries to every layer.
    pub fn append_tokens(&mut self, n: usize) {
        self.seq_len += n;
    }

    /// Placement of a layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn tier_of(&self, layer: usize) -> MemoryTier {
        self.placement[layer]
    }

    /// Moves one layer's cache to the CPU. Returns the bytes transferred
    /// (0 if it was already there).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn offload_layer(&mut self, layer: usize) -> u64 {
        if self.placement[layer] == MemoryTier::Cpu {
            return 0;
        }
        self.placement[layer] = MemoryTier::Cpu;
        self.layer_bytes()
    }

    /// Moves one layer's cache back to the GPU. Returns bytes transferred.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn upload_layer(&mut self, layer: usize) -> u64 {
        if self.placement[layer] == MemoryTier::Gpu {
            return 0;
        }
        self.placement[layer] = MemoryTier::Gpu;
        self.layer_bytes()
    }

    /// Bytes currently held by one layer's cache.
    pub fn layer_bytes(&self) -> u64 {
        self.bytes_per_token_layer * self.seq_len as u64
    }

    /// Aggregate tier statistics.
    pub fn stats(&self) -> TierStats {
        let mut s = TierStats::default();
        for t in &self.placement {
            match t {
                MemoryTier::Gpu => {
                    s.gpu_layers += 1;
                    s.gpu_bytes += self.layer_bytes();
                }
                MemoryTier::Cpu => {
                    s.cpu_layers += 1;
                    s.cpu_bytes += self.layer_bytes();
                }
            }
        }
        s
    }

    /// Indices of layers on the given tier, ascending.
    pub fn layers_on(&self, tier: MemoryTier) -> Vec<usize> {
        self.placement
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == tier)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_on_gpu() {
        let s = KvStore::new(8, 100);
        assert_eq!(s.stats().gpu_layers, 8);
        assert_eq!(s.stats().cpu_layers, 0);
        assert_eq!(s.stats().gpu_bytes, 0);
    }

    #[test]
    fn append_grows_all_layers() {
        let mut s = KvStore::new(2, 10);
        s.append_tokens(5);
        assert_eq!(s.seq_len(), 5);
        assert_eq!(s.stats().gpu_bytes, 2 * 5 * 10);
    }

    #[test]
    fn offload_moves_bytes_between_tiers() {
        let mut s = KvStore::new(4, 10);
        s.append_tokens(8);
        let moved = s.offload_layer(3);
        assert_eq!(moved, 80);
        let st = s.stats();
        assert_eq!(st.gpu_layers, 3);
        assert_eq!(st.cpu_layers, 1);
        assert_eq!(st.cpu_bytes, 80);
    }

    #[test]
    fn double_offload_is_idempotent() {
        let mut s = KvStore::new(2, 10);
        s.append_tokens(3);
        assert_eq!(s.offload_layer(0), 30);
        assert_eq!(s.offload_layer(0), 0);
    }

    #[test]
    fn upload_restores_gpu_placement() {
        let mut s = KvStore::new(2, 10);
        s.append_tokens(4);
        s.offload_layer(1);
        assert_eq!(s.upload_layer(1), 40);
        assert_eq!(s.stats().cpu_layers, 0);
    }

    #[test]
    fn layers_on_reports_indices() {
        let mut s = KvStore::new(5, 1);
        s.offload_layer(4);
        s.offload_layer(2);
        assert_eq!(s.layers_on(MemoryTier::Cpu), vec![2, 4]);
        assert_eq!(s.layers_on(MemoryTier::Gpu), vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_rejected() {
        let _ = KvStore::new(0, 1);
    }
}
