//! Budgeted per-head selection buffers.
//!
//! A [`BudgetBuffer`] bundles one [`ResidentSet`] per (layer, KV head):
//! the GPU-side slot arrays that hold the currently selected KV entries
//! for sparse attention. The runtime drives it once per decode step with
//! the retrieval head's selections and reads back aggregate transfer
//! volumes for the performance model.

use crate::elastic::{DiffPlan, ResidentSet};
use serde::{Deserialize, Serialize};

/// Aggregate transfer accounting for one step across all layers/heads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StepTransfer {
    /// KV entries fetched from the lower tier.
    pub fetched_entries: u64,
    /// KV entries reused from residency.
    pub reused_entries: u64,
}

impl StepTransfer {
    /// Fraction of required entries served without transfer.
    pub fn reuse_fraction(&self) -> f32 {
        let total = self.fetched_entries + self.reused_entries;
        if total == 0 {
            1.0
        } else {
            self.reused_entries as f32 / total as f32
        }
    }
}

/// Per-(layer, head) resident sets under a shared per-head budget.
#[derive(Debug, Clone)]
pub struct BudgetBuffer {
    sets: Vec<Vec<ResidentSet>>,
    budget: usize,
}

impl BudgetBuffer {
    /// Creates empty buffers: `layers x kv_heads` resident sets of
    /// `budget` slots each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(layers: usize, kv_heads: usize, budget: usize) -> Self {
        assert!(layers > 0 && kv_heads > 0, "dimensions must be positive");
        Self {
            sets: (0..layers)
                .map(|_| (0..kv_heads).map(|_| ResidentSet::new(budget)).collect())
                .collect(),
            budget,
        }
    }

    /// The per-head budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.sets.len()
    }

    /// Number of KV heads per layer.
    pub fn kv_heads(&self) -> usize {
        self.sets.first().map_or(0, Vec::len)
    }

    /// Access one head's resident set.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn head(&self, layer: usize, kv_head: usize) -> &ResidentSet {
        &self.sets[layer][kv_head]
    }

    /// Plans and applies the selections for one decode step.
    /// `selections[layer][kv_head]` are the wanted positions. Returns the
    /// aggregate transfer volume.
    ///
    /// # Panics
    ///
    /// Panics if the selection shape does not match the buffer shape or a
    /// selection exceeds the budget.
    pub fn step(&mut self, selections: &[Vec<Vec<usize>>]) -> StepTransfer {
        assert_eq!(selections.len(), self.layers(), "layer count mismatch");
        let mut agg = StepTransfer::default();
        for (layer, heads) in selections.iter().enumerate() {
            assert_eq!(heads.len(), self.kv_heads(), "head count mismatch");
            for (h, wanted) in heads.iter().enumerate() {
                let plan: DiffPlan = self.sets[layer][h].plan(wanted);
                agg.fetched_entries += plan.fetch.len() as u64;
                agg.reused_entries += plan.reused.len() as u64;
                self.sets[layer][h].apply(&plan);
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_fetches_everything() {
        let mut b = BudgetBuffer::new(2, 2, 4);
        let sel = vec![vec![vec![0, 1, 2, 3]; 2]; 2];
        let t = b.step(&sel);
        assert_eq!(t.fetched_entries, 2 * 2 * 4);
        assert_eq!(t.reused_entries, 0);
    }

    #[test]
    fn repeated_step_reuses_everything() {
        let mut b = BudgetBuffer::new(2, 2, 4);
        let sel = vec![vec![vec![0, 1, 2, 3]; 2]; 2];
        b.step(&sel);
        let t = b.step(&sel);
        assert_eq!(t.fetched_entries, 0);
        assert_eq!(t.reuse_fraction(), 1.0);
    }

    #[test]
    fn shifted_selection_transfers_difference() {
        let mut b = BudgetBuffer::new(1, 1, 4);
        b.step(&[vec![vec![0, 1, 2, 3]]]);
        let t = b.step(&[vec![vec![1, 2, 3, 4]]]);
        assert_eq!(t.fetched_entries, 1);
        assert_eq!(t.reused_entries, 3);
    }

    #[test]
    fn heads_are_independent() {
        let mut b = BudgetBuffer::new(1, 2, 2);
        b.step(&[vec![vec![0, 1], vec![5, 6]]]);
        assert!(b.head(0, 0).contains(0));
        assert!(!b.head(0, 0).contains(5));
        assert!(b.head(0, 1).contains(5));
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn wrong_shape_rejected() {
        let mut b = BudgetBuffer::new(2, 1, 2);
        b.step(&[vec![vec![0]]]);
    }
}
