//! System-level KV cache management for the SpeContext reproduction.
//!
//! While `spec-model` holds the *logical* KV tensors a forward pass reads,
//! this crate models the *physical* side the paper's system contributions
//! manipulate:
//!
//! * [`store`] — a tiered KV store that tracks which layer's cache lives in
//!   which memory tier (GPU HBM vs CPU DRAM) and byte-accurate sizes;
//! * [`pages`] — the paged layout and per-page min/max metadata vectors
//!   used by the Quest baseline;
//! * [`budget`] — budgeted per-head selection buffers (the GPU-resident
//!   slots that hold the currently selected KV entries);
//! * [`elastic`] — the set-difference planner of Section 5.4: given last
//!   step's resident selection and this step's requirement, compute the
//!   minimal transfer plan (`S_now − S_last` in, `S_last − S_now` out);
//! * [`alloc`] — block-based KV memory allocation (contiguous-reserve vs
//!   paged), the mechanism behind the serving batch caps.

pub mod alloc;
pub mod budget;
pub mod elastic;
pub mod pages;
pub mod store;

pub use alloc::{AllocId, AllocPolicy, BlockAllocator};
pub use budget::BudgetBuffer;
pub use elastic::{DiffPlan, ResidentSet};
pub use pages::{PageTable, PAGE_SIZE_DEFAULT};
pub use store::{KvStore, MemoryTier, TierStats};
