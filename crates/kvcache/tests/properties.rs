//! Property-based tests for the KV cache subsystem, covering the elastic
//! loading invariants the paper's Section 5.4 relies on.

use proptest::prelude::*;
use spec_kvcache::{KvStore, MemoryTier, PageTable, ResidentSet};
use spec_tensor::Matrix;

fn selection(budget: usize, universe: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0..universe, 0..=budget)
        .prop_map(|s| s.into_iter().collect::<Vec<usize>>())
}

proptest! {
    /// Applying a plan always makes exactly the wanted set resident
    /// (plus possibly stale entries when under budget — the wanted set
    /// itself must always be fully resident).
    #[test]
    fn plan_apply_reaches_wanted_state(
        sels in prop::collection::vec(selection(8, 64), 1..12)
    ) {
        let mut rs = ResidentSet::new(8);
        for wanted in &sels {
            let plan = rs.plan(wanted);
            // Fixed-budget symmetry: when the buffer is full and the
            // selection is at budget, fetch count equals eviction count.
            prop_assert_eq!(plan.fetch.len(), plan.evict_slots.len());
            rs.apply(&plan);
            for w in wanted {
                prop_assert!(rs.contains(*w), "position {} not resident", w);
            }
            prop_assert!(rs.occupied() <= rs.budget());
        }
    }

    /// Transfer volume is exactly the set difference size.
    #[test]
    fn transfer_is_set_difference(
        a in selection(8, 32),
        b in selection(8, 32),
    ) {
        let mut rs = ResidentSet::new(8);
        rs.apply(&rs.plan(&a));
        let plan = rs.plan(&b);
        let a_set: std::collections::HashSet<_> = a.iter().collect();
        let expected: usize = b.iter().filter(|p| !a_set.contains(p)).count();
        prop_assert_eq!(plan.transfer_count(), expected);
    }

    /// Plans never fetch something already resident.
    #[test]
    fn no_redundant_fetches(
        a in selection(6, 24),
        b in selection(6, 24),
    ) {
        let mut rs = ResidentSet::new(6);
        rs.apply(&rs.plan(&a));
        let plan = rs.plan(&b);
        for f in &plan.fetch {
            prop_assert!(!a.contains(f));
        }
        for r in &plan.reused {
            prop_assert!(a.contains(r) && b.contains(r));
        }
    }

    /// Quest page bound: the page score upper-bounds every member dot.
    #[test]
    fn page_score_upper_bound(
        rows in 1usize..40,
        page_size in 1usize..9,
        qseed in 0u64..1000,
    ) {
        let dim = 4;
        let data: Vec<f32> = (0..rows * dim)
            .map(|i| (((i as u64 + qseed) * 2654435761 % 2000) as f32 / 1000.0) - 1.0)
            .collect();
        let keys = Matrix::from_vec(rows, dim, data);
        let q: Vec<f32> = (0..dim)
            .map(|i| (((i as u64 + 3 * qseed) * 40503 % 2000) as f32 / 1000.0) - 1.0)
            .collect();
        let table = PageTable::build(&keys, page_size);
        for p in 0..table.num_pages() {
            let bound = table.page_score(p, &q);
            for r in table.page_range(p) {
                let dot: f32 = q.iter().zip(keys.row(r)).map(|(a, b)| a * b).sum();
                prop_assert!(bound >= dot - 1e-4);
            }
        }
    }

    /// Page expansion covers exactly the selected pages' tokens.
    #[test]
    fn expand_pages_is_exact_cover(
        rows in 1usize..40,
        page_size in 1usize..9,
    ) {
        let keys = Matrix::zeros(rows, 2);
        let table = PageTable::build(&keys, page_size);
        let all: Vec<usize> = (0..table.num_pages()).collect();
        let tokens = table.expand_pages(&all);
        prop_assert_eq!(tokens, (0..rows).collect::<Vec<_>>());
    }

    /// Incrementally extending a page table (in arbitrary chunk sizes)
    /// produces bit-identical min/max metadata to a full rebuild over the
    /// concatenated keys, and identical page scores for any query.
    #[test]
    fn page_table_extend_matches_rebuild(
        rows in 1usize..96,
        dim in 1usize..10,
        page_size in 1usize..20,
        split in 0usize..97,
        vals in prop::collection::vec(-4.0f32..4.0, 96 * 10),
        query in prop::collection::vec(-2.0f32..2.0, 10),
    ) {
        let data: Vec<f32> = vals[..rows * dim].to_vec();
        let keys = Matrix::from_vec(rows, dim, data);
        let split = split.min(rows);
        let prefix = Matrix::from_vec(
            split, dim, keys.as_slice()[..split * dim].to_vec(),
        );
        let suffix = Matrix::from_vec(
            rows - split, dim, keys.as_slice()[split * dim..].to_vec(),
        );
        let mut incremental = PageTable::build(&prefix, page_size);
        incremental.extend(&suffix);
        let rebuilt = PageTable::build(&keys, page_size);
        prop_assert_eq!(incremental.len(), rebuilt.len());
        prop_assert_eq!(incremental.num_pages(), rebuilt.num_pages());
        let q = &query[..dim];
        let a = incremental.scores(q);
        let b = rebuilt.scores(q);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
        }
        // And the scoring kernel itself matches its kept reference.
        prop_assert_eq!(&a, &rebuilt.scores_reference(q));
    }

    /// The row-outer `build` is bit-identical to the retained
    /// column-outer `build_reference`, and page scoring matches the
    /// scalar reference at every SIMD dispatch tier.
    #[test]
    fn build_and_scores_match_references_at_every_tier(
        rows in 0usize..96,
        dim in 1usize..10,
        page_size in 1usize..20,
        vals in prop::collection::vec(-4.0f32..4.0, 96 * 10),
        query in prop::collection::vec(-2.0f32..2.0, 10),
    ) {
        let keys = Matrix::from_vec(rows, dim, vals[..rows * dim].to_vec());
        let table = PageTable::build(&keys, page_size);
        let reference = PageTable::build_reference(&keys, page_size);
        prop_assert_eq!(table.len(), reference.len());
        prop_assert_eq!(table.num_pages(), reference.num_pages());
        let q = &query[..dim];
        let want = reference.scores_reference(q);
        for (x, y) in table.scores(q).iter().zip(&want) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
        }
        for &tier in spec_tensor::dispatch::available_tiers() {
            let got = spec_tensor::dispatch::with_tier(tier, || table.scores(q));
            for (p, (x, y)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "page {} tier {}: {} vs {}", p, tier, x, y
                );
            }
        }
    }

    /// Tier accounting conserves total bytes.
    #[test]
    fn tier_bytes_conserved(
        layers in 1usize..10,
        tokens in 0usize..100,
        moves in prop::collection::vec((0usize..10, any::<bool>()), 0..20),
    ) {
        let mut s = KvStore::new(layers, 64);
        s.append_tokens(tokens);
        for (l, up) in moves {
            let l = l % layers;
            if up { s.upload_layer(l); } else { s.offload_layer(l); }
            let st = s.stats();
            prop_assert_eq!(
                st.gpu_bytes + st.cpu_bytes,
                64 * layers as u64 * tokens as u64
            );
            prop_assert_eq!(st.gpu_layers + st.cpu_layers, layers);
        }
        let _ = s.layers_on(MemoryTier::Gpu);
    }
}
