//! Property tests pinning every migrated selector's zero-allocation
//! scratch path **bit-for-bit** against its kept reference implementation
//! (the `matmul`/`matmul_naive` contract of PR 3, applied to selection):
//! same positions, same order, across random geometries, budgets, page
//! and cluster sizes, GQA group sizes, and decode growth beyond the
//! prefill. The ShadowKV/InfiniGen cases additionally sweep every
//! available SIMD dispatch tier (via `spec_tensor::dispatch::with_tier`)
//! so the LUT/batched scoring paths stay pinned to their scalar
//! references. CI runs this suite under the `SPEC_THREADS` env matrix
//! and a `SPEC_SIMD=scalar` lane; the
//! selection paths are thread-count invariant by construction (the only
//! parallel path, `SpecSelection`'s per-head fan-out, is order-preserving
//! and pinned explicitly below).

use proptest::prelude::*;
use spec_model::{AttentionKind, LayerSelector, Model, ModelKv, PrefillMode, SimGeometry};
use spec_retrieval::clusterkv::ClusterKvSelector;
use spec_retrieval::common::{
    assemble_baseline_selection, assemble_baseline_selection_reference,
    assemble_budgeted_selection, assemble_budgeted_selection_reference, group_max_scores,
    SelectorConfig,
};
use spec_retrieval::infinigen::InfiniGenSelector;
use spec_retrieval::quest::QuestSelector;
use spec_retrieval::shadowkv::ShadowKvSelector;
use spec_retrieval::spec_head::{MappingLevel, SpecSelection};
use spec_tensor::topk::{RankScratch, ScoreArena, SelectScratch};
use spec_tensor::{topk, Matrix};

/// Deterministic pseudo-random scores (plain code, no RNG plumbing).
fn synth_scores(n: usize, salt: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            ((i as u64).wrapping_mul(2654435761).wrapping_add(salt * 97) % 10_000) as f32
                * 0.01
                * if (i + salt as usize).is_multiple_of(3) {
                    -1.0
                } else {
                    1.0
                }
        })
        .collect()
}

fn synth_queries(geom: &SimGeometry, salt: u64) -> Matrix {
    let vals: Vec<f32> = (0..geom.q_heads * geom.head_dim)
        .map(|i| ((i as u64 * 31 + salt * 7) as f32 * 0.173).sin())
        .collect();
    Matrix::from_vec(geom.q_heads, geom.head_dim, vals)
}

fn prefilled(kind: AttentionKind, n: usize, seed: u64) -> (Model, ModelKv) {
    let model = Model::new(SimGeometry::tiny(kind), seed);
    let tokens: Vec<usize> = (0..n).map(|i| (i * 7 + seed as usize) % 60).collect();
    let (kv, _) = model.prefill_tokens(&tokens, PrefillMode::Exact);
    (model, kv)
}

/// Grows `kv` by `steps` decode steps so seq_len > prefill_len.
fn grow(model: &Model, kv: &mut ModelKv, steps: usize) {
    let emb = model.embed_tokens(&[1]);
    for i in 0..steps {
        let pos = kv.seq_len();
        let _ = i;
        model.decode_step(emb.row(0), pos, kv);
    }
}

fn kinds() -> [AttentionKind; 3] {
    // MLA is rejected by the layer-wise baselines (no page/cluster/shadow
    // support), matching the paper.
    [AttentionKind::Mha, AttentionKind::Gqa, AttentionKind::Mqa]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scratch-based top-k equals the argsort-prefix full-sort path.
    #[test]
    fn partial_select_matches_argsort_prefix(
        n in 1usize..400,
        k in 0usize..420,
        salt in 0u64..1000,
    ) {
        let scores = synth_scores(n, salt);
        let mut rank = RankScratch::default();
        let got = rank.top_k_desc(&scores, k).to_vec();
        let want: Vec<usize> = topk::argsort_desc(&scores)
            .into_iter()
            .take(k.min(n))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// In-place group pooling equals the allocating reference.
    #[test]
    fn pooling_matches_group_max_reference(
        heads in 1usize..9,
        group_ix in 0usize..3,
        n in 1usize..120,
        salt in 0u64..500,
    ) {
        // Pick a group size dividing the head count.
        let divisors: Vec<usize> = (1..=heads).filter(|g| heads % g == 0).collect();
        let group = divisors[group_ix % divisors.len()];
        let rows: Vec<Vec<f32>> = (0..heads)
            .map(|h| synth_scores(n, salt + h as u64))
            .collect();
        let want = group_max_scores(&rows, group);
        let mut arena = ScoreArena::default();
        for (g, pooled_want) in want.iter().enumerate() {
            arena.pool_group_max(g * group..(g + 1) * group, |m, buf| {
                buf.clear();
                buf.extend_from_slice(&rows[m]);
            });
            prop_assert_eq!(&arena.pooled, pooled_want, "group {}", g);
        }
    }

    /// Scratch assembly equals the BTreeSet reference, stats included.
    #[test]
    fn assembly_matches_reference(
        prefill in 1usize..160,
        extra in 0usize..24,
        budget in 0usize..200,
        sinks in 0usize..6,
        recent in 0usize..10,
        salt in 0u64..500,
    ) {
        let cfg = SelectorConfig {
            budget,
            sinks,
            recent,
            ..SelectorConfig::with_budget(budget.max(1))
        };
        let scores = synth_scores(prefill, salt);
        let mut scratch = SelectScratch::new();
        let got = assemble_baseline_selection(
            &scores, prefill, prefill + extra, &cfg, &mut scratch.rank, &mut scratch.marks,
        );
        let want =
            assemble_baseline_selection_reference(&scores, prefill, prefill + extra, &cfg);
        prop_assert_eq!(got, want, "baseline");

        let scores = synth_scores(prefill + extra, salt + 17);
        let got = assemble_budgeted_selection(
            &scores, prefill + extra, &cfg, &mut scratch.rank, &mut scratch.marks,
        );
        let want = assemble_budgeted_selection_reference(&scores, prefill + extra, &cfg);
        prop_assert_eq!(got, want, "budgeted");
    }
}

proptest! {
    // Model-backed cases are heavier; fewer cases each, still a fresh
    // random geometry/budget/page mix every run of the env matrix.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Quest: scratch selection == reference selection, bit for bit.
    #[test]
    fn quest_matches_reference(
        kind_ix in 0usize..3,
        n in 24usize..72,
        budget in 1usize..64,
        sinks in 0usize..4,
        page_size in 1usize..9,
        steps in 0usize..4,
        seed in 0u64..40,
    ) {
        let (model, mut kv) = prefilled(kinds()[kind_ix], n, seed);
        let cfg = SelectorConfig {
            budget,
            sinks,
            page_size,
            ..SelectorConfig::with_budget(budget)
        };
        let mut quest = QuestSelector::preprocess(&kv, cfg);
        grow(&model, &mut kv, steps);
        let queries = synth_queries(model.geometry(), seed);
        let mut scratch = SelectScratch::new();
        for layer in 0..model.geometry().layers {
            let got = quest.select(layer, &queries, &kv.layers[layer], &mut scratch);
            let want = quest.select_reference(layer, &queries, &kv.layers[layer]);
            prop_assert_eq!(got, want, "layer {}", layer);
        }
    }

    /// ClusterKV: scratch selection == reference selection.
    #[test]
    fn clusterkv_matches_reference(
        kind_ix in 0usize..3,
        n in 24usize..64,
        budget in 1usize..56,
        sinks in 0usize..4,
        tokens_per_cluster in 1usize..24,
        steps in 0usize..3,
        seed in 0u64..40,
    ) {
        let (model, mut kv) = prefilled(kinds()[kind_ix], n, seed);
        let cfg = SelectorConfig {
            budget,
            sinks,
            tokens_per_cluster,
            ..SelectorConfig::with_budget(budget)
        };
        let mut ckv = ClusterKvSelector::preprocess(&kv, cfg, seed);
        grow(&model, &mut kv, steps);
        let queries = synth_queries(model.geometry(), seed + 3);
        let mut scratch = SelectScratch::new();
        for layer in 0..model.geometry().layers {
            let got = ckv.select(layer, &queries, &kv.layers[layer], &mut scratch);
            let want = ckv.select_reference(layer, &queries, &kv.layers[layer]);
            prop_assert_eq!(got, want, "layer {}", layer);
        }
    }

    /// ShadowKV: scratch selection == reference selection.
    #[test]
    fn shadowkv_matches_reference(
        kind_ix in 0usize..3,
        n in 24usize..64,
        budget in 1usize..56,
        sinks in 0usize..4,
        recent in 0usize..8,
        steps in 0usize..3,
        seed in 0u64..40,
    ) {
        let (model, mut kv) = prefilled(kinds()[kind_ix], n, seed);
        let cfg = SelectorConfig {
            budget,
            sinks,
            recent,
            ..SelectorConfig::with_budget(budget)
        };
        let mut skv = ShadowKvSelector::preprocess(&kv, cfg);
        grow(&model, &mut kv, steps);
        let queries = synth_queries(model.geometry(), seed + 5);
        let mut scratch = SelectScratch::new();
        for layer in 0..model.geometry().layers {
            let want = skv.select_reference(layer, &queries, &kv.layers[layer]);
            // The LUT scoring path must agree at every SIMD tier, not
            // just the ambient one (select is stateless across calls).
            for &tier in spec_tensor::dispatch::available_tiers() {
                let got = spec_tensor::dispatch::with_tier(tier, || {
                    skv.select(layer, &queries, &kv.layers[layer], &mut scratch)
                });
                prop_assert_eq!(got, want.clone(), "layer {} tier {}", layer, tier);
            }
        }
    }

    /// InfiniGen: identical call sequences on two clones (the speculative
    /// previous-queries state must evolve identically) stay bit-equal.
    #[test]
    fn infinigen_matches_reference(
        kind_ix in 0usize..3,
        n in 24usize..64,
        budget in 1usize..48,
        steps in 1usize..4,
        seed in 0u64..40,
    ) {
        let (model, kv) = prefilled(kinds()[kind_ix], n, seed);
        let cfg = SelectorConfig {
            budget,
            sinks: 2,
            recent: 2,
            ..SelectorConfig::with_budget(budget)
        };
        let refr0 = InfiniGenSelector::preprocess(&kv, cfg);
        // One fast clone per SIMD tier: the speculative previous-queries
        // state is mutated by select, so each tier steps its own copy
        // through the identical call sequence.
        let mut lanes: Vec<_> = spec_tensor::dispatch::available_tiers()
            .iter()
            .map(|&tier| (tier, refr0.clone(), SelectScratch::new()))
            .collect();
        let mut refr = refr0;
        for step in 0..steps {
            for layer in 0..model.geometry().layers {
                let queries = synth_queries(model.geometry(), seed + (step * 11 + layer) as u64);
                let want = refr.select_reference(layer, &queries, &kv.layers[layer]);
                for (tier, fast, scratch) in &mut lanes {
                    let got = spec_tensor::dispatch::with_tier(*tier, || {
                        fast.select(layer, &queries, &kv.layers[layer], scratch)
                    });
                    prop_assert_eq!(
                        got, want.clone(),
                        "step {} layer {} tier {}", step, layer, tier
                    );
                }
            }
        }
    }

    /// SpeContext head mapping: scratch path == reference, at 1 and N
    /// worker threads, for every attention kind and both mapping levels.
    #[test]
    fn spec_head_matches_reference(
        kind_ix in 0usize..4,
        n in 16usize..200,
        budget in 1usize..64,
        level_ix in 0usize..2,
        seed in 0u64..40,
    ) {
        let kind = [
            AttentionKind::Mha,
            AttentionKind::Gqa,
            AttentionKind::Mqa,
            AttentionKind::Mla,
        ][kind_ix];
        let geom = SimGeometry::tiny(kind);
        let level = [MappingLevel::Head, MappingLevel::Batch][level_ix];
        let cfg = SelectorConfig {
            budget,
            sinks: 2,
            recent: 2,
            ..SelectorConfig::with_budget(budget)
        };
        let scores: Vec<Vec<f32>> = (0..geom.q_heads)
            .map(|h| synth_scores(n, seed + h as u64))
            .collect();
        let want = SpecSelection::from_head_scores_reference(&scores, &geom, &cfg, level);
        for threads in [1usize, 4] {
            let got = spec_parallel::with_threads(threads, || {
                SpecSelection::from_head_scores(&scores, &geom, &cfg, level)
            });
            prop_assert_eq!(&got, &want, "threads {}", threads);
        }
    }
}
