//! InfiniGen-style speculative per-layer prefetch (paper Fig. 7(c)).
//!
//! InfiniGen (Lee et al., OSDI'24) hides part of the per-layer fetch
//! latency by *speculating* layer `l+1`'s selection from layer `l`'s
//! query: attention queries of adjacent layers are correlated, so the
//! prefetch issued one layer early usually covers what layer `l+1`
//! actually needs. The paper includes this paradigm in its Fig. 7
//! comparison; this module implements the selection side so accuracy
//! (speculation misses) can be measured, while `spec_runtime::dataflow`
//! models its timing.
//!
//! The previous step's queries are kept in a reused flat [`Matrix`]
//! (no per-call clone of `Vec<Vec<f32>>`), scoring pools into the
//! [`SelectScratch`] arena, and assembly runs on the scratch;
//! [`InfiniGenSelector::select_reference`] keeps the original allocating
//! path for property pinning (it maintains the same speculative state).

use crate::common::{
    assemble_baseline_selection, assemble_baseline_selection_reference, group_max_scores,
    SelectorConfig,
};
use spec_model::{LayerKv, LayerSelector, ModelKv};
use spec_tensor::topk::SelectScratch;
use spec_tensor::Matrix;

/// The InfiniGen selector: scores layer `l` with the query of layer
/// `l-1` (the speculative prefetch), falling back to the true query for
/// layer 0. Keys are scored directly (no preprocessing) against the
/// prefill cache, with full retention of generated KV.
#[derive(Debug, Clone)]
pub struct InfiniGenSelector {
    cfg: SelectorConfig,
    /// Prefill keys per layer per KV head (the speculation targets).
    keys: Vec<Vec<Matrix>>,
    prefill_len: usize,
    /// The previous layer's queries within the current step (empty until
    /// the first `select` call).
    last_queries: Matrix,
}

impl InfiniGenSelector {
    /// Captures the prefill key caches.
    ///
    /// # Panics
    ///
    /// Panics on latent (MLA) layouts.
    pub fn preprocess(kv: &ModelKv, cfg: SelectorConfig) -> Self {
        let prefill_len = kv.seq_len();
        let keys = kv
            .layers
            .iter()
            .map(|layer| match layer {
                LayerKv::PerHead { keys, .. } => keys.clone(),
                LayerKv::Latent { .. } => panic!("InfiniGen does not support MLA layouts"),
            })
            .collect();
        Self {
            cfg,
            keys,
            prefill_len,
            last_queries: Matrix::default(),
        }
    }

    /// The prefill length captured at preprocessing time.
    pub fn prefill_len(&self) -> usize {
        self.prefill_len
    }

    fn score_layer(
        &self,
        layer: usize,
        queries: &Matrix,
        seq_len: usize,
        scratch: &mut SelectScratch,
    ) -> Vec<Vec<usize>> {
        let heads = &self.keys[layer];
        let group = (queries.rows() / heads.len()).max(1);
        let SelectScratch {
            scores,
            rank,
            marks,
        } = scratch;
        heads
            .iter()
            .enumerate()
            .map(|(hh, keys)| {
                scores.pool_group_max(hh * group..(hh + 1) * group, |q, buf| {
                    // Batched row kernel: the dispatch tier is resolved
                    // once per sweep, bit-identical to the reference's
                    // per-row `matrix::dot`.
                    keys.dot_rows_into(queries.row(q), buf);
                });
                assemble_baseline_selection(
                    &scores.pooled,
                    self.prefill_len,
                    seq_len,
                    &self.cfg,
                    rank,
                    marks,
                )
                .0
            })
            .collect()
    }

    fn score_layer_reference(
        &self,
        layer: usize,
        queries: &Matrix,
        seq_len: usize,
    ) -> Vec<Vec<usize>> {
        let heads = &self.keys[layer];
        let group = (queries.rows() / heads.len()).max(1);
        heads
            .iter()
            .enumerate()
            .map(|(hh, keys)| {
                let per_q: Vec<Vec<f32>> = (hh * group..(hh + 1) * group)
                    .map(|q| {
                        keys.iter_rows()
                            .map(|k| spec_tensor::matrix::dot(queries.row(q), k))
                            .collect()
                    })
                    .collect();
                let pooled = group_max_scores(&per_q, group)[0].clone();
                assemble_baseline_selection_reference(&pooled, self.prefill_len, seq_len, &self.cfg)
                    .0
            })
            .collect()
    }

    /// The original selection path (allocating group-max + `BTreeSet`
    /// assembly), kept as the property-test reference. Maintains the
    /// same speculative previous-queries state as the scratch path.
    pub fn select_reference(
        &mut self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
    ) -> Option<Vec<Vec<usize>>> {
        let seq_len = kv.seq_len();
        let sel = if layer > 0 && self.last_queries.rows() == queries.rows() {
            self.score_layer_reference(layer, &self.last_queries, seq_len)
        } else {
            self.score_layer_reference(layer, queries, seq_len)
        };
        self.last_queries.copy_from(queries);
        Some(sel)
    }
}

impl LayerSelector for InfiniGenSelector {
    fn select(
        &mut self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
        scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>> {
        let seq_len = kv.seq_len();
        // Speculative: use the previous layer's queries when available
        // (the prefetch was issued before this layer's queries existed).
        let sel = if layer > 0 && self.last_queries.rows() == queries.rows() {
            self.score_layer(layer, &self.last_queries, seq_len, scratch)
        } else {
            self.score_layer(layer, queries, seq_len, scratch)
        };
        self.last_queries.copy_from(queries);
        Some(sel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, Model, PrefillMode, SimGeometry};
    use spec_tensor::stats;

    fn setup(n: usize) -> (Model, ModelKv) {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let m = Model::new(geom, 141);
        let toks: Vec<usize> = (0..n).map(|i| i % 60).collect();
        let (kv, _) = m.prefill_tokens(&toks, PrefillMode::Exact);
        (m, kv)
    }

    #[test]
    fn produces_valid_selections_through_the_model() {
        let (m, mut kv) = setup(48);
        let cfg = SelectorConfig::with_budget(12);
        let mut sel = InfiniGenSelector::preprocess(&kv, cfg);
        let emb = m.embed_tokens(&[3]);
        let out = m.decode_step_selected(emb.row(0), 48, &mut kv, &mut sel);
        assert!(out.logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn speculation_overlaps_true_selection() {
        // The speculative (previous-layer) selection must overlap what
        // the true query would select — the premise of Fig. 7(c).
        let (m, kv) = setup(64);
        let cfg = SelectorConfig {
            budget: 16,
            sinks: 2,
            recent: 2,
            ..SelectorConfig::with_budget(16)
        };
        let mut spec = InfiniGenSelector::preprocess(&kv, cfg);
        let g = m.geometry();
        // Two correlated query sets (adjacent layers of a real model).
        let q1_vals: Vec<f32> = (0..g.q_heads)
            .flat_map(|h| (0..g.head_dim).map(move |d| ((h * 7 + d) as f32 * 0.3).sin()))
            .collect();
        let q1 = Matrix::from_vec(g.q_heads, g.head_dim, q1_vals);
        let q2_vals: Vec<f32> = q1.as_slice().iter().map(|v| v * 0.9 + 0.05).collect();
        let q2 = Matrix::from_vec(g.q_heads, g.head_dim, q2_vals);
        let layer_kv = &kv.layers[0];
        let mut scratch = SelectScratch::new();
        let true_sel = spec.score_layer(1, &q2, 64, &mut scratch);
        // Simulate: layer 0 sees q1, layer 1 speculated from q1.
        let _ = spec.select(0, &q1, layer_kv, &mut scratch);
        let spec_sel = spec.select(1, &q2, layer_kv, &mut scratch).unwrap();
        // spec_sel was computed from q1 (speculative), not q2.
        let overlap = stats::overlap_rate(&true_sel[0], &spec_sel[0]);
        assert!(overlap > 0.5, "speculation overlap {overlap}");
    }

    #[test]
    fn retains_generated_kv() {
        let (m, mut kv) = setup(32);
        let mut sel = InfiniGenSelector::preprocess(&kv, SelectorConfig::with_budget(8));
        let emb = m.embed_tokens(&[1, 2]);
        m.decode_step(emb.row(0), 32, &mut kv);
        m.decode_step(emb.row(1), 33, &mut kv);
        let g = m.geometry();
        let queries = Matrix::from_vec(g.q_heads, g.head_dim, vec![0.2; g.q_heads * g.head_dim]);
        let mut scratch = SelectScratch::new();
        let s = sel
            .select(0, &queries, &kv.layers[0], &mut scratch)
            .unwrap();
        assert!(s[0].contains(&32) && s[0].contains(&33));
    }

    #[test]
    fn scratch_selection_matches_reference_across_layers() {
        // Run the same multi-layer call sequence on two clones so the
        // speculative previous-queries state evolves identically.
        let (m, kv) = setup(40);
        let cfg = SelectorConfig {
            budget: 14,
            sinks: 2,
            recent: 3,
            ..SelectorConfig::with_budget(14)
        };
        let mut fast = InfiniGenSelector::preprocess(&kv, cfg);
        let mut refr = fast.clone();
        let g = m.geometry();
        let mut scratch = SelectScratch::new();
        for step in 0..3 {
            for layer in 0..g.layers {
                let vals: Vec<f32> = (0..g.q_heads * g.head_dim)
                    .map(|i| ((i * 11 + step * 5 + layer) as f32 * 0.61).sin())
                    .collect();
                let queries = Matrix::from_vec(g.q_heads, g.head_dim, vals);
                assert_eq!(
                    fast.select(layer, &queries, &kv.layers[layer], &mut scratch),
                    refr.select_reference(layer, &queries, &kv.layers[layer]),
                    "step={step} layer={layer}"
                );
            }
        }
    }
}
