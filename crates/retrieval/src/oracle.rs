//! Oracle selection metrics: comparing any selection against the LLM's own
//! (dense) attention distribution.
//!
//! The oracle is what Fig. 5(a) calls "attention weight accumulation":
//! the fraction of true attention mass a budget-`k` selection captures,
//! and the hit rate of the selection against the model's top-`k` tokens.

use spec_model::StepTrace;
use spec_tensor::topk::PosBitSet;
use spec_tensor::{stats, topk};

/// Accumulated attention mass of an oracle top-`k` selection, averaged
/// over all layers and query heads of a dense trace.
pub fn oracle_mass_at(trace: &StepTrace, k: usize) -> f32 {
    let mut total = 0.0;
    let mut count = 0;
    for layer in &trace.attn {
        for head in layer {
            total += topk::top_k_mass(head, k);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f32
    }
}

/// Attention mass captured by an arbitrary per-head selection, averaged
/// over layers and heads. `selection[kv_head]` holds positions; query
/// head `q` uses `selection[q / group]`.
pub fn selection_mass(trace: &StepTrace, selection: &[Vec<usize>], group: usize) -> f32 {
    let mut total = 0.0;
    let mut count = 0;
    // One bitset reused across heads and layers (refilled only when the
    // KV-head selection changes) instead of a HashSet per query head.
    let mut sel_marks = PosBitSet::default();
    let mut filled_for: Option<usize> = None;
    for (layer_w, layer_p) in trace.attn.iter().zip(&trace.positions) {
        for (q, head) in layer_w.iter().enumerate() {
            let sel_idx = (q / group).min(selection.len() - 1);
            let sel = &selection[sel_idx];
            if filled_for != Some(sel_idx) {
                sel_marks.reset(sel.iter().max().map_or(0, |&p| p + 1));
                for &p in sel {
                    sel_marks.mark(p);
                }
                filled_for = Some(sel_idx);
            }
            let pos = &layer_p[q];
            // Positions in the trace may be a subset (sparse trace); map
            // selection membership through the recorded position list.
            let mass: f32 = head
                .iter()
                .zip(pos)
                .filter(|(_, p)| sel_marks.contains(**p))
                .map(|(w, _)| w)
                .sum();
            total += mass;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f32
    }
}

/// Hit rate of a selection against the oracle top-`k` of a dense trace,
/// averaged over layers and query heads.
pub fn selection_hit_rate(
    trace: &StepTrace,
    selection: &[Vec<usize>],
    group: usize,
    k: usize,
) -> f32 {
    let mut total = 0.0;
    let mut count = 0;
    for (layer_w, layer_p) in trace.attn.iter().zip(&trace.positions) {
        for (q, head) in layer_w.iter().enumerate() {
            let oracle_local = topk::top_k_indices(head, k);
            let pos = &layer_p[q];
            let oracle: Vec<usize> = oracle_local.iter().map(|&i| pos[i]).collect();
            let sel = &selection[(q / group).min(selection.len() - 1)];
            total += stats::hit_rate(&oracle, sel);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, Model, PrefillMode, SimGeometry, SparsePlan};

    fn dense_trace(n: usize) -> (Model, StepTrace) {
        let m = Model::new(SimGeometry::tiny(AttentionKind::Gqa), 61);
        let tokens: Vec<usize> = (0..n).collect();
        let (mut kv, _) = m.prefill_tokens(&tokens, PrefillMode::Exact);
        let emb = m.embed_tokens(&[0]);
        let plan = SparsePlan::dense(m.geometry().layers);
        let (_, trace) = m.decode_step_traced(emb.row(0), n, &mut kv, &plan);
        (m, trace)
    }

    #[test]
    fn oracle_mass_is_monotone_in_k() {
        let (_, trace) = dense_trace(24);
        let m4 = oracle_mass_at(&trace, 4);
        let m8 = oracle_mass_at(&trace, 8);
        let m25 = oracle_mass_at(&trace, 25);
        assert!(m4 <= m8 + 1e-6);
        assert!(m8 <= m25 + 1e-6);
        assert!((m25 - 1.0).abs() < 1e-4, "full budget captures all mass");
    }

    #[test]
    fn full_selection_has_unit_mass_and_hits() {
        let (m, trace) = dense_trace(16);
        let all: Vec<usize> = (0..17).collect();
        let sel = vec![all; m.geometry().kv_heads];
        let g = m.geometry().group_size();
        assert!((selection_mass(&trace, &sel, g) - 1.0).abs() < 1e-4);
        assert!((selection_hit_rate(&trace, &sel, g, 4) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_selection_has_zero_mass() {
        let (m, trace) = dense_trace(16);
        let sel = vec![Vec::new(); m.geometry().kv_heads];
        let g = m.geometry().group_size();
        assert_eq!(selection_mass(&trace, &sel, g), 0.0);
    }
}
