//! Quest: query-aware paged KV selection (Tang et al., 2024).
//!
//! Preprocessing (after prefill): partition each head's key cache into
//! pages and store per-page element-wise min/max vectors. At each decode
//! step and each layer, compute an upper bound of every page's attention
//! score from the current query, take the top pages within budget, and
//! load all KV entries of the selected pages. Newly generated KV pairs
//! are retained in full (the paradigm's Challenge-2 behaviour).

use crate::common::{group_max_scores, SelectorConfig};
use spec_kvcache::PageTable;
use spec_model::{LayerKv, LayerSelector, ModelKv};
use std::collections::BTreeSet;

/// The Quest selector. Build with [`QuestSelector::preprocess`].
#[derive(Debug, Clone)]
pub struct QuestSelector {
    cfg: SelectorConfig,
    /// `tables[layer][kv_head]`.
    tables: Vec<Vec<PageTable>>,
    prefill_len: usize,
}

impl QuestSelector {
    /// Builds page tables over the prefill KV cache.
    ///
    /// # Panics
    ///
    /// Panics if the cache uses a latent (MLA) layout — Quest does not
    /// support MLA (the paper reports no MLA/Qwen support either).
    pub fn preprocess(kv: &ModelKv, cfg: SelectorConfig) -> Self {
        let prefill_len = kv.seq_len();
        let tables = kv
            .layers
            .iter()
            .map(|layer| match layer {
                LayerKv::PerHead { keys, .. } => keys
                    .iter()
                    .map(|k| PageTable::build(k, cfg.page_size))
                    .collect(),
                LayerKv::Latent { .. } => panic!("Quest does not support MLA layouts"),
            })
            .collect();
        Self {
            cfg,
            tables,
            prefill_len,
        }
    }

    /// The prefill length captured at preprocessing time.
    pub fn prefill_len(&self) -> usize {
        self.prefill_len
    }

    /// Per-head page selection for one layer from pooled page scores.
    fn select_head(&self, table: &PageTable, page_scores: &[f32], seq_len: usize) -> Vec<usize> {
        let order = spec_tensor::topk::argsort_desc(page_scores);
        let mut picked: BTreeSet<usize> = BTreeSet::new();
        // Sinks as pages.
        for p in 0..self.cfg.sinks.min(self.prefill_len) {
            picked.insert(p);
        }
        let budget = self.cfg.budget.min(self.prefill_len);
        for page in order {
            if picked.len() >= budget {
                break;
            }
            for pos in table.page_range(page) {
                if picked.len() >= budget {
                    break;
                }
                picked.insert(pos);
            }
        }
        // Complete retention of newly generated KV.
        for pos in self.prefill_len..seq_len {
            picked.insert(pos);
        }
        picked.into_iter().collect()
    }
}

impl LayerSelector for QuestSelector {
    fn select(
        &mut self,
        layer: usize,
        queries: &[Vec<f32>],
        kv: &LayerKv,
    ) -> Option<Vec<Vec<usize>>> {
        let tables = &self.tables[layer];
        let group = (queries.len() / tables.len()).max(1);
        let seq_len = kv.seq_len();
        Some(
            tables
                .iter()
                .enumerate()
                .map(|(hh, t)| {
                    // Score pages per query head, then group-max the
                    // *scores* (the GQA reduction of Fig. 5(c)).
                    let per_q: Vec<Vec<f32>> = (hh * group..(hh + 1) * group)
                        .map(|q| t.scores(&queries[q]))
                        .collect();
                    let pooled = group_max_scores(&per_q, group)[0].clone();
                    self.select_head(t, &pooled, seq_len)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, Model, PrefillMode, SimGeometry};

    fn setup(n: usize) -> (Model, ModelKv) {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let m = Model::new(geom, 21);
        let toks: Vec<usize> = (0..n).map(|i| i % 60).collect();
        let (kv, _) = m.prefill_tokens(&toks, PrefillMode::Exact);
        (m, kv)
    }

    #[test]
    fn selection_respects_budget_over_prefix() {
        let (m, kv) = setup(64);
        let cfg = SelectorConfig {
            budget: 16,
            sinks: 2,
            ..SelectorConfig::with_budget(16)
        };
        let mut quest = QuestSelector::preprocess(&kv, cfg);
        let g = m.geometry();
        let queries = vec![vec![0.1; g.head_dim]; g.q_heads];
        let sel = quest.select(0, &queries, &kv.layers[0]).unwrap();
        assert_eq!(sel.len(), g.kv_heads);
        for head in &sel {
            assert!(head.len() <= 16, "selected {}", head.len());
            assert!(head.windows(2).all(|w| w[0] < w[1]));
            assert!(head.contains(&0) && head.contains(&1), "sinks kept");
        }
    }

    #[test]
    fn new_tokens_fully_retained() {
        let (m, mut kv) = setup(32);
        let cfg = SelectorConfig::with_budget(8);
        let mut quest = QuestSelector::preprocess(&kv, cfg);
        // Decode a few steps so the cache outgrows the prefill.
        let emb = m.embed_tokens(&[1, 2, 3]);
        for (i, r) in (0..3).enumerate() {
            m.decode_step(emb.row(r), 32 + i, &mut kv);
        }
        let g = m.geometry();
        let queries = vec![vec![0.0; g.head_dim]; g.q_heads];
        let sel = quest.select(1, &queries, &kv.layers[1]).unwrap();
        for head in &sel {
            for p in 32..35 {
                assert!(head.contains(&p), "generated {p} must be retained");
            }
        }
    }

    #[test]
    fn aligned_query_selects_matching_page() {
        // Score all keys of head 0 with a query aligned to one of them
        // (the key at position 50); the page containing the best-matching
        // key must be chosen. Quest's min/max page bound is intentionally
        // loose, so give the budget room for three pages; the
        // best-matching page must rank within.
        let (m, kv) = setup(64);
        let cfg = SelectorConfig {
            budget: 48,
            sinks: 0,
            recent: 0,
            ..SelectorConfig::with_budget(48)
        };
        let mut quest = QuestSelector::preprocess(&kv, cfg);
        // Use an actual key from position 50 as the query direction, and
        // find which position actually scores highest under it.
        let (query, best_pos) = match &kv.layers[0] {
            spec_model::LayerKv::PerHead { keys, .. } => {
                let q: Vec<f32> = keys[0].row(50).to_vec();
                let best = (0..keys[0].rows())
                    .max_by(|&a, &b| {
                        let dot = |r: usize| -> f32 {
                            q.iter().zip(keys[0].row(r)).map(|(x, y)| x * y).sum()
                        };
                        dot(a).total_cmp(&dot(b))
                    })
                    .unwrap();
                (q, best)
            }
            _ => unreachable!(),
        };
        let g = m.geometry();
        let queries = vec![query; g.q_heads];
        let sel = quest.select(0, &queries, &kv.layers[0]).unwrap();
        assert!(
            sel[0].contains(&best_pos),
            "page containing the best-matching key (position {best_pos}) must be selected"
        );
    }

    #[test]
    #[should_panic(expected = "does not support MLA")]
    fn rejects_mla_layout() {
        let geom = SimGeometry::tiny(AttentionKind::Mla);
        let m = Model::new(geom, 3);
        let (kv, _) = m.prefill_tokens(&[1, 2, 3, 4], PrefillMode::Exact);
        let _ = QuestSelector::preprocess(&kv, SelectorConfig::default());
    }
}
