//! Quest: query-aware paged KV selection (Tang et al., 2024).
//!
//! Preprocessing (after prefill): partition each head's key cache into
//! pages and store per-page element-wise min/max vectors. At each decode
//! step and each layer, compute an upper bound of every page's attention
//! score from the current query, take the top pages within budget, and
//! load all KV entries of the selected pages. Newly generated KV pairs
//! are retained in full (the paradigm's Challenge-2 behaviour).
//!
//! The selection path is zero-allocation: page scores are pooled into the
//! [`SelectScratch`] score arena, the page walk runs over a partial
//! selection of the page ranking, and picked positions accumulate in the
//! scratch bitset. [`QuestSelector::select_reference`] keeps the original
//! `BTreeSet`-plus-argsort path for property pinning.

use crate::common::{group_max_scores, mark_budgeted_group_walk, SelectorConfig};
use spec_kvcache::PageTable;
use spec_model::{LayerKv, LayerSelector, ModelKv};
use spec_tensor::topk::{PosBitSet, RankScratch, SelectScratch};
use spec_tensor::Matrix;
use std::collections::BTreeSet;

/// The Quest selector. Build with [`QuestSelector::preprocess`].
#[derive(Debug, Clone)]
pub struct QuestSelector {
    cfg: SelectorConfig,
    /// `tables[layer][kv_head]`.
    tables: Vec<Vec<PageTable>>,
    prefill_len: usize,
}

impl QuestSelector {
    /// Builds page tables over the prefill KV cache.
    ///
    /// # Panics
    ///
    /// Panics if the cache uses a latent (MLA) layout — Quest does not
    /// support MLA (the paper reports no MLA/Qwen support either).
    pub fn preprocess(kv: &ModelKv, cfg: SelectorConfig) -> Self {
        let prefill_len = kv.seq_len();
        let tables = kv
            .layers
            .iter()
            .map(|layer| match layer {
                LayerKv::PerHead { keys, .. } => keys
                    .iter()
                    .map(|k| PageTable::build(k, cfg.page_size))
                    .collect(),
                LayerKv::Latent { .. } => panic!("Quest does not support MLA layouts"),
            })
            .collect();
        Self {
            cfg,
            tables,
            prefill_len,
        }
    }

    /// The prefill length captured at preprocessing time.
    pub fn prefill_len(&self) -> usize {
        self.prefill_len
    }

    /// Per-head page selection for one layer from pooled page scores.
    ///
    /// Pages are walked in descending score order; each page's positions
    /// are inserted until the *position* budget fills, so the last
    /// visited page is truncated mid-page (only its first
    /// `budget - already_picked` positions survive — Quest's wholesale
    /// page loading is budget-clipped, not rounded up to page
    /// granularity). Sinks are pre-marked as positions (always-kept
    /// initial tokens), and the shared
    /// [`mark_budgeted_group_walk`] handles the candidate-prefix ranking.
    fn select_head(
        &self,
        table: &PageTable,
        page_scores: &[f32],
        seq_len: usize,
        rank: &mut RankScratch,
        marks: &mut PosBitSet,
    ) -> Vec<usize> {
        let budget = self.cfg.budget.min(self.prefill_len);
        let ps = table.page_size().max(1);
        mark_budgeted_group_walk(
            page_scores,
            budget,
            budget.div_ceil(ps) + self.cfg.sinks.div_ceil(ps) + 1,
            seq_len.max(self.prefill_len),
            self.cfg.sinks.min(self.prefill_len),
            rank,
            marks,
            |page| table.page_range(page),
        );
        // Complete retention of newly generated KV.
        for pos in self.prefill_len..seq_len {
            marks.mark(pos);
        }
        marks.collect_sorted()
    }

    /// The original selection path (`BTreeSet` + full argsort + allocated
    /// group-max), kept as the reference for the bit-for-bit property
    /// tests. Mirrors [`select`](LayerSelector::select) exactly.
    pub fn select_reference(
        &self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
    ) -> Option<Vec<Vec<usize>>> {
        let tables = &self.tables[layer];
        let group = (queries.rows() / tables.len()).max(1);
        let seq_len = kv.seq_len();
        Some(
            tables
                .iter()
                .enumerate()
                .map(|(hh, t)| {
                    let per_q: Vec<Vec<f32>> = (hh * group..(hh + 1) * group)
                        .map(|q| t.scores_reference(queries.row(q)))
                        .collect();
                    let pooled = group_max_scores(&per_q, group)[0].clone();
                    self.select_head_reference(t, &pooled, seq_len)
                })
                .collect(),
        )
    }

    fn select_head_reference(
        &self,
        table: &PageTable,
        page_scores: &[f32],
        seq_len: usize,
    ) -> Vec<usize> {
        let order = spec_tensor::topk::argsort_desc(page_scores);
        let mut picked: BTreeSet<usize> = BTreeSet::new();
        // Sinks as positions.
        for p in 0..self.cfg.sinks.min(self.prefill_len) {
            picked.insert(p);
        }
        let budget = self.cfg.budget.min(self.prefill_len);
        for page in order {
            if picked.len() >= budget {
                break;
            }
            for pos in table.page_range(page) {
                if picked.len() >= budget {
                    break;
                }
                picked.insert(pos);
            }
        }
        for pos in self.prefill_len..seq_len {
            picked.insert(pos);
        }
        picked.into_iter().collect()
    }
}

impl LayerSelector for QuestSelector {
    fn select(
        &mut self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
        scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>> {
        let tables = &self.tables[layer];
        let group = (queries.rows() / tables.len()).max(1);
        let seq_len = kv.seq_len();
        let SelectScratch {
            scores,
            rank,
            marks,
        } = scratch;
        let this = &*self;
        Some(
            tables
                .iter()
                .enumerate()
                .map(|(hh, t)| {
                    // Score pages per query head, then group-max the
                    // *scores* in place (the GQA reduction of Fig. 5(c)).
                    scores.pool_group_max(hh * group..(hh + 1) * group, |q, buf| {
                        t.scores_into(queries.row(q), buf);
                    });
                    this.select_head(t, &scores.pooled, seq_len, rank, marks)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, Model, PrefillMode, SimGeometry};

    fn setup(n: usize) -> (Model, ModelKv) {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let m = Model::new(geom, 21);
        let toks: Vec<usize> = (0..n).map(|i| i % 60).collect();
        let (kv, _) = m.prefill_tokens(&toks, PrefillMode::Exact);
        (m, kv)
    }

    fn uniform_queries(m: &Model, v: f32) -> Matrix {
        let g = m.geometry();
        Matrix::from_vec(g.q_heads, g.head_dim, vec![v; g.q_heads * g.head_dim])
    }

    #[test]
    fn selection_respects_budget_over_prefix() {
        let (m, kv) = setup(64);
        let cfg = SelectorConfig {
            budget: 16,
            sinks: 2,
            ..SelectorConfig::with_budget(16)
        };
        let mut quest = QuestSelector::preprocess(&kv, cfg);
        let queries = uniform_queries(&m, 0.1);
        let mut scratch = SelectScratch::new();
        let sel = quest
            .select(0, &queries, &kv.layers[0], &mut scratch)
            .unwrap();
        assert_eq!(sel.len(), m.geometry().kv_heads);
        for head in &sel {
            assert!(head.len() <= 16, "selected {}", head.len());
            assert!(head.windows(2).all(|w| w[0] < w[1]));
            assert!(head.contains(&0) && head.contains(&1), "sinks kept");
        }
    }

    #[test]
    fn new_tokens_fully_retained() {
        let (m, mut kv) = setup(32);
        let cfg = SelectorConfig::with_budget(8);
        let mut quest = QuestSelector::preprocess(&kv, cfg);
        // Decode a few steps so the cache outgrows the prefill.
        let emb = m.embed_tokens(&[1, 2, 3]);
        for (i, r) in (0..3).enumerate() {
            m.decode_step(emb.row(r), 32 + i, &mut kv);
        }
        let queries = uniform_queries(&m, 0.0);
        let mut scratch = SelectScratch::new();
        let sel = quest
            .select(1, &queries, &kv.layers[1], &mut scratch)
            .unwrap();
        for head in &sel {
            for p in 32..35 {
                assert!(head.contains(&p), "generated {p} must be retained");
            }
        }
    }

    #[test]
    fn aligned_query_selects_matching_page() {
        // Score all keys of head 0 with a query aligned to one of them
        // (the key at position 50); the page containing the best-matching
        // key must be chosen. Quest's min/max page bound is intentionally
        // loose, so give the budget room for three pages; the
        // best-matching page must rank within.
        let (m, kv) = setup(64);
        let cfg = SelectorConfig {
            budget: 48,
            sinks: 0,
            recent: 0,
            ..SelectorConfig::with_budget(48)
        };
        let mut quest = QuestSelector::preprocess(&kv, cfg);
        // Use an actual key from position 50 as the query direction, and
        // find which position actually scores highest under it.
        let (query, best_pos) = match &kv.layers[0] {
            spec_model::LayerKv::PerHead { keys, .. } => {
                let q: Vec<f32> = keys[0].row(50).to_vec();
                let best = (0..keys[0].rows())
                    .max_by(|&a, &b| {
                        let dot = |r: usize| -> f32 {
                            q.iter().zip(keys[0].row(r)).map(|(x, y)| x * y).sum()
                        };
                        dot(a).total_cmp(&dot(b))
                    })
                    .unwrap();
                (q, best)
            }
            _ => unreachable!(),
        };
        let g = m.geometry();
        let rows: Vec<&[f32]> = (0..g.q_heads).map(|_| query.as_slice()).collect();
        let queries = Matrix::from_rows(&rows);
        let mut scratch = SelectScratch::new();
        let sel = quest
            .select(0, &queries, &kv.layers[0], &mut scratch)
            .unwrap();
        assert!(
            sel[0].contains(&best_pos),
            "page containing the best-matching key (position {best_pos}) must be selected"
        );
    }

    #[test]
    fn scratch_selection_matches_reference() {
        let (m, mut kv) = setup(48);
        for (budget, sinks) in [(4, 0), (12, 2), (31, 5), (64, 3)] {
            let cfg = SelectorConfig {
                budget,
                sinks,
                page_size: 5,
                ..SelectorConfig::with_budget(budget)
            };
            let mut quest = QuestSelector::preprocess(&kv, cfg);
            let g = m.geometry();
            let vals: Vec<f32> = (0..g.q_heads * g.head_dim)
                .map(|i| ((i * 13 + budget) as f32 * 0.29).sin())
                .collect();
            let queries = Matrix::from_vec(g.q_heads, g.head_dim, vals);
            let mut scratch = SelectScratch::new();
            for layer in 0..g.layers {
                let got = quest
                    .select(layer, &queries, &kv.layers[layer], &mut scratch)
                    .unwrap();
                let want = quest
                    .select_reference(layer, &queries, &kv.layers[layer])
                    .unwrap();
                assert_eq!(got, want, "budget={budget} layer={layer}");
            }
        }
        // And with generated tokens beyond the prefill.
        let emb = m.embed_tokens(&[7]);
        m.decode_step(emb.row(0), 48, &mut kv);
        let mut quest = QuestSelector::preprocess(&kv, SelectorConfig::with_budget(16));
        let queries = uniform_queries(&m, 0.2);
        let mut scratch = SelectScratch::new();
        assert_eq!(
            quest.select(0, &queries, &kv.layers[0], &mut scratch),
            quest.select_reference(0, &queries, &kv.layers[0])
        );
    }

    #[test]
    #[should_panic(expected = "does not support MLA")]
    fn rejects_mla_layout() {
        let geom = SimGeometry::tiny(AttentionKind::Mla);
        let m = Model::new(geom, 3);
        let (kv, _) = m.prefill_tokens(&[1, 2, 3, 4], PrefillMode::Exact);
        let _ = QuestSelector::preprocess(&kv, SelectorConfig::default());
    }
}
