//! ClusterKV: retrieval over semantic clusters of keys (Liu et al., 2024).
//!
//! Preprocessing (after prefill): k-means cluster each head's key cache;
//! the cluster centroids act as retrieval representatives. At decode time
//! a query scores all centroids, clusters are ranked, and members of the
//! best clusters are selected until the budget fills. Finer-grained than
//! Quest's positional pages, hence its accuracy edge at small budgets
//! (paper Fig. 8), at the cost of a much heavier preprocessing step.
//!
//! The selection path runs on the [`SelectScratch`] arenas (pooled
//! centroid scores, partial cluster ranking, bitset accumulation);
//! [`ClusterKvSelector::select_reference`] keeps the original
//! `BTreeSet`-plus-argsort path for property pinning.

use crate::common::{group_max_scores, mark_budgeted_group_walk, SelectorConfig};
use spec_model::{LayerKv, LayerSelector, ModelKv};
use spec_tensor::kmeans::{kmeans, KMeans, KMeansConfig};
use spec_tensor::topk::{PosBitSet, RankScratch, SelectScratch};
use spec_tensor::{Matrix, SimRng};
use std::collections::BTreeSet;

/// The ClusterKV selector. Build with [`ClusterKvSelector::preprocess`].
#[derive(Debug, Clone)]
pub struct ClusterKvSelector {
    cfg: SelectorConfig,
    /// `clusters[layer][kv_head]`.
    clusters: Vec<Vec<KMeans>>,
    prefill_len: usize,
}

impl ClusterKvSelector {
    /// Clusters the prefill KV cache. Deterministic given `seed`.
    ///
    /// # Panics
    ///
    /// Panics on latent (MLA) layouts, which ClusterKV does not support.
    pub fn preprocess(kv: &ModelKv, cfg: SelectorConfig, seed: u64) -> Self {
        let prefill_len = kv.seq_len();
        let k = (prefill_len / cfg.tokens_per_cluster.max(1)).max(1);
        let mut rng = SimRng::seed(seed);
        let clusters = kv
            .layers
            .iter()
            .map(|layer| match layer {
                LayerKv::PerHead { keys, .. } => keys
                    .iter()
                    .map(|keys| {
                        kmeans(
                            keys,
                            KMeansConfig {
                                k,
                                max_iters: 15,
                                tol: 1e-3,
                            },
                            &mut rng,
                        )
                    })
                    .collect(),
                LayerKv::Latent { .. } => panic!("ClusterKV does not support MLA layouts"),
            })
            .collect();
        Self {
            cfg,
            clusters,
            prefill_len,
        }
    }

    /// The prefill length captured at preprocessing time.
    pub fn prefill_len(&self) -> usize {
        self.prefill_len
    }

    /// Walks clusters in descending score order, inserting members until
    /// the position budget fills (the final cluster is truncated
    /// mid-member-list). The shared [`mark_budgeted_group_walk`] handles
    /// the candidate-prefix ranking, with the initial estimate sized by
    /// the average cluster population (uneven cluster sizes just trigger
    /// its doubling retry).
    fn select_head(
        &self,
        km: &KMeans,
        cluster_scores: &[f32],
        seq_len: usize,
        rank: &mut RankScratch,
        marks: &mut PosBitSet,
    ) -> Vec<usize> {
        let budget = self.cfg.budget.min(self.prefill_len);
        let per_cluster = self.cfg.tokens_per_cluster.max(1);
        mark_budgeted_group_walk(
            cluster_scores,
            budget,
            budget.div_ceil(per_cluster) + 2,
            seq_len.max(self.prefill_len),
            self.cfg.sinks.min(self.prefill_len),
            rank,
            marks,
            |cluster| km.clusters[cluster].iter().copied(),
        );
        for pos in self.prefill_len..seq_len {
            marks.mark(pos);
        }
        marks.collect_sorted()
    }

    /// The original selection path, kept as the property-test reference.
    pub fn select_reference(
        &self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
    ) -> Option<Vec<Vec<usize>>> {
        let heads = &self.clusters[layer];
        let group = (queries.rows() / heads.len()).max(1);
        let seq_len = kv.seq_len();
        Some(
            heads
                .iter()
                .enumerate()
                .map(|(hh, km)| {
                    let per_q: Vec<Vec<f32>> = (hh * group..(hh + 1) * group)
                        .map(|q| {
                            km.centroids
                                .iter_rows()
                                .map(|c| spec_tensor::matrix::dot(queries.row(q), c))
                                .collect()
                        })
                        .collect();
                    let pooled = group_max_scores(&per_q, group)[0].clone();
                    self.select_head_reference(km, &pooled, seq_len)
                })
                .collect(),
        )
    }

    fn select_head_reference(
        &self,
        km: &KMeans,
        cluster_scores: &[f32],
        seq_len: usize,
    ) -> Vec<usize> {
        let order = spec_tensor::topk::argsort_desc(cluster_scores);
        let mut picked: BTreeSet<usize> = BTreeSet::new();
        for p in 0..self.cfg.sinks.min(self.prefill_len) {
            picked.insert(p);
        }
        let budget = self.cfg.budget.min(self.prefill_len);
        'outer: for cluster in order {
            for &member in &km.clusters[cluster] {
                if picked.len() >= budget {
                    break 'outer;
                }
                picked.insert(member);
            }
        }
        for pos in self.prefill_len..seq_len {
            picked.insert(pos);
        }
        picked.into_iter().collect()
    }
}

impl LayerSelector for ClusterKvSelector {
    fn select(
        &mut self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
        scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>> {
        let heads = &self.clusters[layer];
        let group = (queries.rows() / heads.len()).max(1);
        let seq_len = kv.seq_len();
        let SelectScratch {
            scores,
            rank,
            marks,
        } = scratch;
        let this = &*self;
        Some(
            heads
                .iter()
                .enumerate()
                .map(|(hh, km)| {
                    // Centroid scores per query head, pooled in place.
                    scores.pool_group_max(hh * group..(hh + 1) * group, |q, buf| {
                        let query = queries.row(q);
                        buf.clear();
                        buf.extend(
                            km.centroids
                                .iter_rows()
                                .map(|c| spec_tensor::matrix::dot(query, c)),
                        );
                    });
                    this.select_head(km, &scores.pooled, seq_len, rank, marks)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, Model, PrefillMode, SimGeometry};

    fn setup(n: usize) -> (Model, ModelKv) {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let m = Model::new(geom, 31);
        let toks: Vec<usize> = (0..n).map(|i| i % 60).collect();
        let (kv, _) = m.prefill_tokens(&toks, PrefillMode::Exact);
        (m, kv)
    }

    fn uniform_queries(m: &Model, v: f32) -> Matrix {
        let g = m.geometry();
        Matrix::from_vec(g.q_heads, g.head_dim, vec![v; g.q_heads * g.head_dim])
    }

    #[test]
    fn budget_respected_and_sorted() {
        let (m, kv) = setup(64);
        let cfg = SelectorConfig::with_budget(12);
        let mut ckv = ClusterKvSelector::preprocess(&kv, cfg, 7);
        let queries = uniform_queries(&m, 0.3);
        let mut scratch = SelectScratch::new();
        let sel = ckv
            .select(0, &queries, &kv.layers[0], &mut scratch)
            .unwrap();
        for head in &sel {
            assert!(head.len() <= 12);
            assert!(head.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn whole_clusters_are_preferred() {
        // A query equal to a key should pull in that key's cluster first.
        let (m, kv) = setup(48);
        let cfg = SelectorConfig {
            budget: 24,
            sinks: 0,
            ..SelectorConfig::with_budget(24)
        };
        let mut ckv = ClusterKvSelector::preprocess(&kv, cfg, 7);
        let key7: Vec<f32> = match &kv.layers[0] {
            spec_model::LayerKv::PerHead { keys, .. } => keys[0].row(7).to_vec(),
            _ => unreachable!(),
        };
        let g = m.geometry();
        let rows: Vec<&[f32]> = (0..g.q_heads).map(|_| key7.as_slice()).collect();
        let queries = Matrix::from_rows(&rows);
        let mut scratch = SelectScratch::new();
        let sel = ckv
            .select(0, &queries, &kv.layers[0], &mut scratch)
            .unwrap();
        assert!(sel[0].contains(&7), "own cluster must be selected");
    }

    #[test]
    fn retains_generated_tokens() {
        let (m, mut kv) = setup(32);
        let mut ckv = ClusterKvSelector::preprocess(&kv, SelectorConfig::with_budget(8), 3);
        let emb = m.embed_tokens(&[5, 6]);
        m.decode_step(emb.row(0), 32, &mut kv);
        m.decode_step(emb.row(1), 33, &mut kv);
        let queries = uniform_queries(&m, 0.0);
        let mut scratch = SelectScratch::new();
        let sel = ckv
            .select(0, &queries, &kv.layers[0], &mut scratch)
            .unwrap();
        assert!(sel[0].contains(&32) && sel[0].contains(&33));
    }

    #[test]
    fn deterministic_given_seed() {
        let (m, kv) = setup(40);
        let a = ClusterKvSelector::preprocess(&kv, SelectorConfig::with_budget(8), 11);
        let b = ClusterKvSelector::preprocess(&kv, SelectorConfig::with_budget(8), 11);
        let queries = uniform_queries(&m, 0.5);
        let mut a = a;
        let mut b = b;
        let mut scratch = SelectScratch::new();
        assert_eq!(
            a.select(0, &queries, &kv.layers[0], &mut scratch),
            b.select(0, &queries, &kv.layers[0], &mut scratch)
        );
    }

    #[test]
    fn scratch_selection_matches_reference() {
        let (m, kv) = setup(56);
        // Grow a second cache beyond the prefill so the retained-new
        // region is exercised too.
        let mut grown = kv.clone();
        let emb = m.embed_tokens(&[9, 4]);
        m.decode_step(emb.row(0), 56, &mut grown);
        m.decode_step(emb.row(1), 57, &mut grown);
        for (budget, sinks, tpc) in [(6, 0, 4), (13, 2, 16), (40, 3, 7), (80, 1, 16)] {
            let cfg = SelectorConfig {
                budget,
                sinks,
                tokens_per_cluster: tpc,
                ..SelectorConfig::with_budget(budget)
            };
            let mut ckv = ClusterKvSelector::preprocess(&kv, cfg, 5);
            let g = m.geometry();
            let vals: Vec<f32> = (0..g.q_heads * g.head_dim)
                .map(|i| ((i * 17 + budget) as f32 * 0.43).cos())
                .collect();
            let queries = Matrix::from_vec(g.q_heads, g.head_dim, vals);
            let mut scratch = SelectScratch::new();
            for layer in 0..g.layers {
                assert_eq!(
                    ckv.select(layer, &queries, &grown.layers[layer], &mut scratch),
                    ckv.select_reference(layer, &queries, &grown.layers[layer]),
                    "budget={budget} tpc={tpc} layer={layer}"
                );
            }
        }
    }
}
