//! Shared selection plumbing: budgets, forced positions, assembly.
//!
//! The assembly functions are the inner loop of every selector: they run
//! per decode step, per layer, per KV head. They are written against the
//! [`SelectScratch`](spec_tensor::topk::SelectScratch) arenas — bitset
//! marking plus partial selection instead of `BTreeSet` inserts over a
//! full argsort — and allocate nothing but the returned position vector.
//! The original tree-based implementations are kept as `*_reference`
//! functions (the `matmul`/`matmul_naive` contract of PR 3): property
//! tests pin the rewritten paths to them bit-for-bit.

use serde::{Deserialize, Serialize};
use spec_tensor::topk;
use spec_tensor::topk::{PosBitSet, RankScratch};
use std::collections::BTreeSet;

/// Configuration shared by all budgeted selectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// KV budget `B`: positions retrieved from the (preprocessed) prefix.
    pub budget: usize,
    /// Always-kept initial positions (attention sinks).
    pub sinks: usize,
    /// Always-kept most recent positions.
    pub recent: usize,
    /// Quest page size.
    pub page_size: usize,
    /// ClusterKV: average tokens per cluster.
    pub tokens_per_cluster: usize,
    /// SpeContext: EMA blend of the retrieval query with the running
    /// context average (0 = raw token embedding, 1 = pure context EMA).
    /// Models the DLM consuming the slowly-varying hidden state (EAGLE-3
    /// feeds hidden features, not just the token), which is what makes
    /// adjacent-step selections overlap strongly (Fig. 6(b)).
    pub query_smoothing: f32,
}

impl SelectorConfig {
    /// A config with the given budget and conventional defaults
    /// (4 sinks, 8 recent, 16-token pages, 16-token clusters).
    pub fn with_budget(budget: usize) -> Self {
        Self {
            budget,
            sinks: 4,
            recent: 8,
            page_size: 16,
            tokens_per_cluster: 16,
            query_smoothing: 0.5,
        }
    }
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self::with_budget(1024)
    }
}

/// Statistics about a produced selection (for transfer accounting and
/// Fig. 6(b)-style overlap analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SelectionStats {
    /// Positions selected from the preprocessed prefix.
    pub from_prefix: usize,
    /// Retained newly generated positions.
    pub retained_new: usize,
    /// Forced sink/recent positions.
    pub forced: usize,
}

/// Assembles a baseline's per-head selection (dynamic-selection paradigm):
/// sinks ∪ top-(B − |forced|) of `prefix_scores` ∪ all generated positions
/// (`prefill_len..seq_len`) — the "complete retention of new KV" behaviour
/// the paper identifies as Challenge 2.
///
/// Runs on the caller's scratch arenas: forced and top-scoring positions
/// are marked in the bitset, the budgeted top-k walks only the
/// partial-select prefix (at most `budget` candidates — enough, since at
/// most `forced` of them are already marked), and the sorted selection is
/// assembled by one pass over the bitset words. Output is bit-identical
/// to [`assemble_baseline_selection_reference`].
///
/// `prefix_scores.len()` must equal `prefill_len`.
pub fn assemble_baseline_selection(
    prefix_scores: &[f32],
    prefill_len: usize,
    seq_len: usize,
    cfg: &SelectorConfig,
    rank: &mut RankScratch,
    marks: &mut PosBitSet,
) -> (Vec<usize>, SelectionStats) {
    assert_eq!(prefix_scores.len(), prefill_len, "score length mismatch");
    marks.reset(seq_len.max(prefill_len));
    // Sinks.
    for p in 0..cfg.sinks.min(prefill_len) {
        marks.mark(p);
    }
    // Recent prefix tail (only meaningful right after prefill).
    let recent_lo = prefill_len.saturating_sub(cfg.recent.min(prefill_len));
    for p in recent_lo..prefill_len {
        marks.mark(p);
    }
    let forced = marks.count();
    // Budgeted top-k from the prefix.
    let remaining = cfg.budget.saturating_sub(forced);
    let mut from_prefix = 0;
    if remaining > 0 {
        let candidates = (remaining + forced).min(prefill_len);
        for &idx in rank.top_k_desc(prefix_scores, candidates) {
            if from_prefix >= remaining {
                break;
            }
            if marks.mark(idx) {
                from_prefix += 1;
            }
        }
    }
    // Complete retention of newly generated KV pairs.
    let retained_new = seq_len.saturating_sub(prefill_len);
    for p in prefill_len..seq_len {
        marks.mark(p);
    }
    (
        marks.collect_sorted(),
        SelectionStats {
            from_prefix,
            retained_new,
            forced,
        },
    )
}

/// Assembles SpeContext's selection: a *fixed total budget* over the whole
/// cache (prefix and generated alike — no unbounded retention), with sinks
/// and recency forced inside the budget. Scratch-based; bit-identical to
/// [`assemble_budgeted_selection_reference`].
pub fn assemble_budgeted_selection(
    scores: &[f32],
    seq_len: usize,
    cfg: &SelectorConfig,
    rank: &mut RankScratch,
    marks: &mut PosBitSet,
) -> (Vec<usize>, SelectionStats) {
    assert_eq!(scores.len(), seq_len, "score length mismatch");
    marks.reset(seq_len);
    for p in 0..cfg.sinks.min(seq_len) {
        marks.mark(p);
    }
    let recent_lo = seq_len.saturating_sub(cfg.recent.min(seq_len));
    for p in recent_lo..seq_len {
        marks.mark(p);
    }
    let forced = marks.count();
    let budget = cfg.budget.min(seq_len);
    let mut from_scores = 0;
    // At most `budget` candidates suffice: of the top `budget` scores, at
    // most `forced` are already marked, leaving >= budget - forced fresh.
    for &idx in rank.top_k_desc(scores, budget) {
        if marks.count() >= budget {
            break;
        }
        if marks.mark(idx) {
            from_scores += 1;
        }
    }
    (
        marks.collect_sorted(),
        SelectionStats {
            from_prefix: from_scores,
            retained_new: 0,
            forced,
        },
    )
}

/// Budgeted walk over ranked position *groups* (Quest pages, ClusterKV
/// clusters): after pre-marking the `sinks` initial positions, groups are
/// visited in descending score order and their member positions marked
/// until the position budget fills — the final group is truncated
/// mid-member-list, exactly like the `BTreeSet` references.
///
/// The walk ranks only a partial selection of the group scores, starting
/// from `initial_candidates` and doubling whenever already-marked members
/// or a short final group leave the budget unfilled. Re-walking a longer
/// prefix reproduces the shorter walk exactly (the ranking is a total
/// order), so the result is independent of the starting estimate.
///
/// `members(g)` yields group `g`'s positions; the caller collects the
/// marks (typically after also marking the retained-new tail).
#[allow(clippy::too_many_arguments)]
pub fn mark_budgeted_group_walk<I: Iterator<Item = usize>>(
    group_scores: &[f32],
    budget: usize,
    initial_candidates: usize,
    reset_len: usize,
    sinks: usize,
    rank: &mut RankScratch,
    marks: &mut PosBitSet,
    mut members: impl FnMut(usize) -> I,
) {
    let num_groups = group_scores.len();
    let mut candidates = initial_candidates.max(1).min(num_groups);
    loop {
        marks.reset(reset_len);
        for p in 0..sinks {
            marks.mark(p);
        }
        'walk: for &group in rank.top_k_desc(group_scores, candidates) {
            for pos in members(group) {
                if marks.count() >= budget {
                    break 'walk;
                }
                marks.mark(pos);
            }
        }
        if marks.count() >= budget || candidates >= num_groups {
            break;
        }
        candidates = (candidates * 2).min(num_groups);
    }
}

/// The original `BTreeSet`-plus-argsort baseline assembly, kept as the
/// reference the scratch path is property-pinned against.
pub fn assemble_baseline_selection_reference(
    prefix_scores: &[f32],
    prefill_len: usize,
    seq_len: usize,
    cfg: &SelectorConfig,
) -> (Vec<usize>, SelectionStats) {
    assert_eq!(prefix_scores.len(), prefill_len, "score length mismatch");
    let mut picked: BTreeSet<usize> = BTreeSet::new();
    for p in 0..cfg.sinks.min(prefill_len) {
        picked.insert(p);
    }
    let recent_lo = prefill_len.saturating_sub(cfg.recent.min(prefill_len));
    for p in recent_lo..prefill_len {
        picked.insert(p);
    }
    let forced = picked.len();
    let remaining = cfg.budget.saturating_sub(forced);
    let mut from_prefix = 0;
    for idx in topk::argsort_desc(prefix_scores) {
        if from_prefix >= remaining {
            break;
        }
        if picked.insert(idx) {
            from_prefix += 1;
        }
    }
    let retained_new = seq_len.saturating_sub(prefill_len);
    for p in prefill_len..seq_len {
        picked.insert(p);
    }
    (
        picked.into_iter().collect(),
        SelectionStats {
            from_prefix,
            retained_new,
            forced,
        },
    )
}

/// The original `BTreeSet`-plus-argsort budgeted assembly (reference).
pub fn assemble_budgeted_selection_reference(
    scores: &[f32],
    seq_len: usize,
    cfg: &SelectorConfig,
) -> (Vec<usize>, SelectionStats) {
    assert_eq!(scores.len(), seq_len, "score length mismatch");
    let mut picked: BTreeSet<usize> = BTreeSet::new();
    for p in 0..cfg.sinks.min(seq_len) {
        picked.insert(p);
    }
    let recent_lo = seq_len.saturating_sub(cfg.recent.min(seq_len));
    for p in recent_lo..seq_len {
        picked.insert(p);
    }
    let forced = picked.len();
    let mut from_scores = 0;
    for idx in topk::argsort_desc(scores) {
        if picked.len() >= cfg.budget.min(seq_len) {
            break;
        }
        if picked.insert(idx) {
            from_scores += 1;
        }
    }
    (
        picked.into_iter().collect(),
        SelectionStats {
            from_prefix: from_scores,
            retained_new: 0,
            forced,
        },
    )
}

/// Reduces per-query-head scores to per-KV-head scores by element-wise
/// maximum within each group (the GQA reduction of paper Fig. 5(c);
/// for MHA `group == 1` this is the identity, for MQA it pools all heads).
///
/// This is the allocating reference; the hot path pools in place via
/// [`ScoreArena::pool_group_max`](spec_tensor::topk::ScoreArena::pool_group_max),
/// which folds members in the same order and is pinned against this.
///
/// # Panics
///
/// Panics if `q_scores` is empty or not a multiple of `group`.
pub fn group_max_scores(q_scores: &[Vec<f32>], group: usize) -> Vec<Vec<f32>> {
    assert!(!q_scores.is_empty(), "need at least one head");
    assert_eq!(q_scores.len() % group, 0, "heads not divisible by group");
    q_scores
        .chunks(group)
        .map(|chunk| {
            let mut acc = chunk[0].clone();
            for s in &chunk[1..] {
                for (a, b) in acc.iter_mut().zip(s) {
                    *a = a.max(*b);
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_tensor::topk::SelectScratch;

    fn assemble_baseline(
        scores: &[f32],
        prefill: usize,
        seq: usize,
        cfg: &SelectorConfig,
    ) -> (Vec<usize>, SelectionStats) {
        let mut s = SelectScratch::new();
        assemble_baseline_selection(scores, prefill, seq, cfg, &mut s.rank, &mut s.marks)
    }

    fn assemble_budgeted(
        scores: &[f32],
        seq: usize,
        cfg: &SelectorConfig,
    ) -> (Vec<usize>, SelectionStats) {
        let mut s = SelectScratch::new();
        assemble_budgeted_selection(scores, seq, cfg, &mut s.rank, &mut s.marks)
    }

    #[test]
    fn baseline_keeps_sinks_topk_and_new() {
        let cfg = SelectorConfig {
            budget: 6,
            sinks: 2,
            recent: 0,
            ..SelectorConfig::with_budget(6)
        };
        let scores = vec![0.0, 0.0, 0.9, 0.1, 0.8, 0.2, 0.0, 0.0];
        let (sel, stats) = assemble_baseline(&scores, 8, 11, &cfg);
        // sinks {0,1}, top-4 {2,4,5,3}, new {8,9,10}
        assert!(sel.contains(&0) && sel.contains(&1));
        assert!(sel.contains(&2) && sel.contains(&4));
        assert!(sel.contains(&8) && sel.contains(&10));
        assert_eq!(stats.retained_new, 3);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn baseline_selection_grows_with_generation() {
        let cfg = SelectorConfig::with_budget(4);
        let scores = vec![0.5; 16];
        let (short, _) = assemble_baseline(&scores, 16, 20, &cfg);
        let (long, _) = assemble_baseline(&scores, 16, 40, &cfg);
        assert_eq!(long.len() - short.len(), 20);
    }

    #[test]
    fn budgeted_selection_respects_fixed_budget() {
        let cfg = SelectorConfig {
            budget: 8,
            sinks: 2,
            recent: 2,
            ..SelectorConfig::with_budget(8)
        };
        let scores: Vec<f32> = (0..50).map(|i| (i % 7) as f32).collect();
        let (sel, _) = assemble_budgeted(&scores, 50, &cfg);
        assert_eq!(sel.len(), 8);
        assert!(sel.contains(&0) && sel.contains(&1), "sinks kept");
        assert!(sel.contains(&48) && sel.contains(&49), "recent kept");
    }

    #[test]
    fn budgeted_selection_caps_at_seq_len() {
        let cfg = SelectorConfig::with_budget(100);
        let scores = vec![1.0; 10];
        let (sel, _) = assemble_budgeted(&scores, 10, &cfg);
        assert_eq!(sel.len(), 10);
    }

    #[test]
    fn scratch_assembly_matches_reference_exactly() {
        // Deterministic pseudo-random scores; sweep budgets and splits.
        let scores: Vec<f32> = (0..96)
            .map(|i| ((i * 37 + 11) as f32 * 0.71).sin())
            .collect();
        let mut scratch = SelectScratch::new();
        for budget in [0, 1, 3, 8, 40, 96, 200] {
            for (sinks, recent) in [(0, 0), (2, 3), (6, 8)] {
                let cfg = SelectorConfig {
                    budget,
                    sinks,
                    recent,
                    ..SelectorConfig::with_budget(budget)
                };
                for seq in [96, 100, 130] {
                    let got = assemble_baseline_selection(
                        &scores,
                        96,
                        seq,
                        &cfg,
                        &mut scratch.rank,
                        &mut scratch.marks,
                    );
                    let want = assemble_baseline_selection_reference(&scores, 96, seq, &cfg);
                    assert_eq!(got, want, "baseline budget={budget} seq={seq}");
                }
                let got = assemble_budgeted_selection(
                    &scores,
                    96,
                    &cfg,
                    &mut scratch.rank,
                    &mut scratch.marks,
                );
                let want = assemble_budgeted_selection_reference(&scores, 96, &cfg);
                assert_eq!(got, want, "budgeted budget={budget}");
            }
        }
    }

    #[test]
    fn group_max_pools_within_groups() {
        let qs = vec![
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![5.0, 0.0],
            vec![0.0, 3.0],
        ];
        let pooled = group_max_scores(&qs, 2);
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled[0], vec![1.0, 2.0]);
        assert_eq!(pooled[1], vec![5.0, 3.0]);
    }

    #[test]
    fn group_max_identity_for_group_one() {
        let qs = vec![vec![1.0], vec![2.0]];
        assert_eq!(group_max_scores(&qs, 1), qs);
    }
}
