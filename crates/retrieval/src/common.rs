//! Shared selection plumbing: budgets, forced positions, assembly.

use serde::{Deserialize, Serialize};
use spec_tensor::topk;
use std::collections::BTreeSet;

/// Configuration shared by all budgeted selectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// KV budget `B`: positions retrieved from the (preprocessed) prefix.
    pub budget: usize,
    /// Always-kept initial positions (attention sinks).
    pub sinks: usize,
    /// Always-kept most recent positions.
    pub recent: usize,
    /// Quest page size.
    pub page_size: usize,
    /// ClusterKV: average tokens per cluster.
    pub tokens_per_cluster: usize,
    /// SpeContext: EMA blend of the retrieval query with the running
    /// context average (0 = raw token embedding, 1 = pure context EMA).
    /// Models the DLM consuming the slowly-varying hidden state (EAGLE-3
    /// feeds hidden features, not just the token), which is what makes
    /// adjacent-step selections overlap strongly (Fig. 6(b)).
    pub query_smoothing: f32,
}

impl SelectorConfig {
    /// A config with the given budget and conventional defaults
    /// (4 sinks, 8 recent, 16-token pages, 16-token clusters).
    pub fn with_budget(budget: usize) -> Self {
        Self {
            budget,
            sinks: 4,
            recent: 8,
            page_size: 16,
            tokens_per_cluster: 16,
            query_smoothing: 0.5,
        }
    }
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self::with_budget(1024)
    }
}

/// Statistics about a produced selection (for transfer accounting and
/// Fig. 6(b)-style overlap analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SelectionStats {
    /// Positions selected from the preprocessed prefix.
    pub from_prefix: usize,
    /// Retained newly generated positions.
    pub retained_new: usize,
    /// Forced sink/recent positions.
    pub forced: usize,
}

/// Assembles a baseline's per-head selection (dynamic-selection paradigm):
/// sinks ∪ top-(B − |forced|) of `prefix_scores` ∪ all generated positions
/// (`prefill_len..seq_len`) — the "complete retention of new KV" behaviour
/// the paper identifies as Challenge 2.
///
/// `prefix_scores.len()` must equal `prefill_len`.
pub fn assemble_baseline_selection(
    prefix_scores: &[f32],
    prefill_len: usize,
    seq_len: usize,
    cfg: &SelectorConfig,
) -> (Vec<usize>, SelectionStats) {
    assert_eq!(prefix_scores.len(), prefill_len, "score length mismatch");
    let mut picked: BTreeSet<usize> = BTreeSet::new();
    // Sinks.
    for p in 0..cfg.sinks.min(prefill_len) {
        picked.insert(p);
    }
    // Recent prefix tail (only meaningful right after prefill).
    let recent_lo = prefill_len.saturating_sub(cfg.recent.min(prefill_len));
    for p in recent_lo..prefill_len {
        picked.insert(p);
    }
    let forced = picked.len();
    // Budgeted top-k from the prefix.
    let remaining = cfg.budget.saturating_sub(forced);
    let mut from_prefix = 0;
    for idx in topk::argsort_desc(prefix_scores) {
        if from_prefix >= remaining {
            break;
        }
        if picked.insert(idx) {
            from_prefix += 1;
        }
    }
    // Complete retention of newly generated KV pairs.
    let retained_new = seq_len.saturating_sub(prefill_len);
    for p in prefill_len..seq_len {
        picked.insert(p);
    }
    (
        picked.into_iter().collect(),
        SelectionStats {
            from_prefix,
            retained_new,
            forced,
        },
    )
}

/// Assembles SpeContext's selection: a *fixed total budget* over the whole
/// cache (prefix and generated alike — no unbounded retention), with sinks
/// and recency forced inside the budget.
pub fn assemble_budgeted_selection(
    scores: &[f32],
    seq_len: usize,
    cfg: &SelectorConfig,
) -> (Vec<usize>, SelectionStats) {
    assert_eq!(scores.len(), seq_len, "score length mismatch");
    let mut picked: BTreeSet<usize> = BTreeSet::new();
    for p in 0..cfg.sinks.min(seq_len) {
        picked.insert(p);
    }
    let recent_lo = seq_len.saturating_sub(cfg.recent.min(seq_len));
    for p in recent_lo..seq_len {
        picked.insert(p);
    }
    let forced = picked.len();
    let mut from_scores = 0;
    for idx in topk::argsort_desc(scores) {
        if picked.len() >= cfg.budget.min(seq_len) {
            break;
        }
        if picked.insert(idx) {
            from_scores += 1;
        }
    }
    (
        picked.into_iter().collect(),
        SelectionStats {
            from_prefix: from_scores,
            retained_new: 0,
            forced,
        },
    )
}

/// Reduces per-query-head scores to per-KV-head scores by element-wise
/// maximum within each group (the GQA reduction of paper Fig. 5(c);
/// for MHA `group == 1` this is the identity, for MQA it pools all heads).
///
/// # Panics
///
/// Panics if `q_scores` is empty or not a multiple of `group`.
pub fn group_max_scores(q_scores: &[Vec<f32>], group: usize) -> Vec<Vec<f32>> {
    assert!(!q_scores.is_empty(), "need at least one head");
    assert_eq!(q_scores.len() % group, 0, "heads not divisible by group");
    q_scores
        .chunks(group)
        .map(|chunk| {
            let mut acc = chunk[0].clone();
            for s in &chunk[1..] {
                for (a, b) in acc.iter_mut().zip(s) {
                    *a = a.max(*b);
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_keeps_sinks_topk_and_new() {
        let cfg = SelectorConfig {
            budget: 6,
            sinks: 2,
            recent: 0,
            ..SelectorConfig::with_budget(6)
        };
        let scores = vec![0.0, 0.0, 0.9, 0.1, 0.8, 0.2, 0.0, 0.0];
        let (sel, stats) = assemble_baseline_selection(&scores, 8, 11, &cfg);
        // sinks {0,1}, top-4 {2,4,5,3}, new {8,9,10}
        assert!(sel.contains(&0) && sel.contains(&1));
        assert!(sel.contains(&2) && sel.contains(&4));
        assert!(sel.contains(&8) && sel.contains(&10));
        assert_eq!(stats.retained_new, 3);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn baseline_selection_grows_with_generation() {
        let cfg = SelectorConfig::with_budget(4);
        let scores = vec![0.5; 16];
        let (short, _) = assemble_baseline_selection(&scores, 16, 20, &cfg);
        let (long, _) = assemble_baseline_selection(&scores, 16, 40, &cfg);
        assert_eq!(long.len() - short.len(), 20);
    }

    #[test]
    fn budgeted_selection_respects_fixed_budget() {
        let cfg = SelectorConfig {
            budget: 8,
            sinks: 2,
            recent: 2,
            ..SelectorConfig::with_budget(8)
        };
        let scores: Vec<f32> = (0..50).map(|i| (i % 7) as f32).collect();
        let (sel, _) = assemble_budgeted_selection(&scores, 50, &cfg);
        assert_eq!(sel.len(), 8);
        assert!(sel.contains(&0) && sel.contains(&1), "sinks kept");
        assert!(sel.contains(&48) && sel.contains(&49), "recent kept");
    }

    #[test]
    fn budgeted_selection_caps_at_seq_len() {
        let cfg = SelectorConfig::with_budget(100);
        let scores = vec![1.0; 10];
        let (sel, _) = assemble_budgeted_selection(&scores, 10, &cfg);
        assert_eq!(sel.len(), 10);
    }

    #[test]
    fn group_max_pools_within_groups() {
        let qs = vec![
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![5.0, 0.0],
            vec![0.0, 3.0],
        ];
        let pooled = group_max_scores(&qs, 2);
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled[0], vec![1.0, 2.0]);
        assert_eq!(pooled[1], vec![5.0, 3.0]);
    }

    #[test]
    fn group_max_identity_for_group_one() {
        let qs = vec![vec![1.0], vec![2.0]];
        assert_eq!(group_max_scores(&qs, 1), qs);
    }
}
