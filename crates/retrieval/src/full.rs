//! Full (dense) attention — the accuracy ceiling and throughput floor.

use spec_model::{LayerKv, LayerSelector};

/// Selects every position (returns `None`, requesting dense attention).
///
/// # Example
///
/// ```
/// use spec_retrieval::FullAttention;
/// use spec_model::LayerSelector;
/// use spec_model::{LayerKv, SimGeometry, AttentionKind};
///
/// let mut full = FullAttention;
/// let kv = LayerKv::empty(&SimGeometry::tiny(AttentionKind::Gqa));
/// assert!(full.select(0, &[], &kv).is_none());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullAttention;

impl LayerSelector for FullAttention {
    fn select(
        &mut self,
        _layer: usize,
        _queries: &[Vec<f32>],
        _kv: &LayerKv,
    ) -> Option<Vec<Vec<usize>>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, SimGeometry};

    #[test]
    fn always_dense() {
        let mut f = FullAttention;
        let kv = LayerKv::empty(&SimGeometry::tiny(AttentionKind::Mha));
        for l in 0..4 {
            assert!(f.select(l, &[], &kv).is_none());
        }
    }
}
