//! Full (dense) attention — the accuracy ceiling and throughput floor.

use spec_model::{LayerKv, LayerSelector};
use spec_tensor::topk::SelectScratch;
use spec_tensor::Matrix;

/// Selects every position (returns `None`, requesting dense attention).
///
/// # Example
///
/// ```
/// use spec_retrieval::FullAttention;
/// use spec_model::LayerSelector;
/// use spec_model::{LayerKv, SelectScratch, SimGeometry, AttentionKind};
/// use spec_tensor::Matrix;
///
/// let mut full = FullAttention;
/// let kv = LayerKv::empty(&SimGeometry::tiny(AttentionKind::Gqa));
/// let mut scratch = SelectScratch::new();
/// assert!(full.select(0, &Matrix::default(), &kv, &mut scratch).is_none());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullAttention;

impl LayerSelector for FullAttention {
    fn select(
        &mut self,
        _layer: usize,
        _queries: &Matrix,
        _kv: &LayerKv,
        _scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, SimGeometry};

    #[test]
    fn always_dense() {
        let mut f = FullAttention;
        let kv = LayerKv::empty(&SimGeometry::tiny(AttentionKind::Mha));
        let mut scratch = SelectScratch::new();
        for l in 0..4 {
            assert!(f.select(l, &Matrix::default(), &kv, &mut scratch).is_none());
        }
    }
}
