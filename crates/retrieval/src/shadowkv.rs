//! ShadowKV: quantized-key retrieval with offloaded values
//! (Sun et al., 2024).
//!
//! Preprocessing (after prefill): quantize each head's key cache to int4
//! (the "shadow" of the keys kept on GPU); the full-precision values are
//! offloaded. At decode time the query scores the quantized keys directly
//! (a cheap fused dot), the top positions are selected, and only those
//! values are fetched — plus a key reconstruction step that the dataflow
//! model (Fig. 7(d)) accounts for.
//!
//! Scoring pools into the [`SelectScratch`] arena and assembly runs on
//! the scratch-based `assemble_baseline_selection`;
//! [`ShadowKvSelector::select_reference`] keeps the original allocating
//! path for property pinning.

use crate::common::{
    assemble_baseline_selection, assemble_baseline_selection_reference, group_max_scores,
    SelectorConfig,
};
use spec_model::{LayerKv, LayerSelector, ModelKv};
use spec_tensor::lut::QueryLut;
use spec_tensor::quant::{BitWidth, QuantVec};
use spec_tensor::topk::SelectScratch;
use spec_tensor::Matrix;

/// The ShadowKV selector. Build with [`ShadowKvSelector::preprocess`].
#[derive(Debug, Clone)]
pub struct ShadowKvSelector {
    cfg: SelectorConfig,
    /// `shadow[layer][kv_head][pos]`: quantized key per position.
    shadow: Vec<Vec<Vec<QuantVec>>>,
    prefill_len: usize,
    /// Per-query int4 lookup table, rebuilt (allocation-free once warm)
    /// for each scored query head — see `spec_tensor::lut` for the cost
    /// model; the shadow holds thousands of keys per head, so the table
    /// build amortizes immediately.
    lut: QueryLut,
}

impl ShadowKvSelector {
    /// Quantizes the prefill key caches to int4.
    ///
    /// # Panics
    ///
    /// Panics on latent (MLA) layouts, which ShadowKV does not support.
    pub fn preprocess(kv: &ModelKv, cfg: SelectorConfig) -> Self {
        let prefill_len = kv.seq_len();
        let shadow = kv
            .layers
            .iter()
            .map(|layer| match layer {
                LayerKv::PerHead { keys, .. } => keys
                    .iter()
                    .map(|k| {
                        k.iter_rows()
                            .map(|row| QuantVec::quantize(row, BitWidth::Int4))
                            .collect()
                    })
                    .collect(),
                LayerKv::Latent { .. } => panic!("ShadowKV does not support MLA layouts"),
            })
            .collect();
        Self {
            cfg,
            shadow,
            prefill_len,
            lut: QueryLut::default(),
        }
    }

    /// The prefill length captured at preprocessing time.
    pub fn prefill_len(&self) -> usize {
        self.prefill_len
    }

    /// Bytes held by the quantized shadow keys (GPU-resident footprint).
    pub fn shadow_bytes(&self) -> usize {
        self.shadow
            .iter()
            .flat_map(|l| l.iter())
            .flat_map(|h| h.iter())
            .map(QuantVec::storage_bytes)
            .sum()
    }

    /// The original selection path, kept as the property-test reference.
    pub fn select_reference(
        &self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
    ) -> Option<Vec<Vec<usize>>> {
        let heads = &self.shadow[layer];
        let group = (queries.rows() / heads.len()).max(1);
        let seq_len = kv.seq_len();
        Some(
            heads
                .iter()
                .enumerate()
                .map(|(hh, qkeys)| {
                    let per_q: Vec<Vec<f32>> = (hh * group..(hh + 1) * group)
                        .map(|q| {
                            qkeys
                                .iter()
                                .map(|k| k.dot_reference(queries.row(q)))
                                .collect()
                        })
                        .collect();
                    let pooled = group_max_scores(&per_q, group)[0].clone();
                    let (sel, _) = assemble_baseline_selection_reference(
                        &pooled,
                        self.prefill_len,
                        seq_len,
                        &self.cfg,
                    );
                    sel
                })
                .collect(),
        )
    }
}

impl LayerSelector for ShadowKvSelector {
    fn select(
        &mut self,
        layer: usize,
        queries: &Matrix,
        kv: &LayerKv,
        scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>> {
        // Destructure for disjoint borrows: the shadow keys are read
        // while the LUT rebuilds per query head.
        let Self {
            cfg,
            shadow,
            prefill_len,
            lut,
        } = self;
        let heads = &shadow[layer];
        let group = (queries.rows() / heads.len()).max(1);
        let seq_len = kv.seq_len();
        let SelectScratch {
            scores,
            rank,
            marks,
        } = scratch;
        let prefill_len = *prefill_len;
        Some(
            heads
                .iter()
                .enumerate()
                .map(|(hh, qkeys)| {
                    // LUT-quantized scoring per query head, pooled in
                    // place: one table build per query, then a gather
                    // per (key, element) — bit-identical to the
                    // reference's per-key `dot_reference`.
                    scores.pool_group_max(hh * group..(hh + 1) * group, |q, buf| {
                        lut.rebuild(queries.row(q));
                        lut.scores_into(qkeys, buf);
                    });
                    let (sel, _) = assemble_baseline_selection(
                        &scores.pooled,
                        prefill_len,
                        seq_len,
                        cfg,
                        rank,
                        marks,
                    );
                    sel
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, Model, PrefillMode, SimGeometry};

    fn setup(n: usize) -> (Model, ModelKv) {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let m = Model::new(geom, 41);
        let toks: Vec<usize> = (0..n).map(|i| i % 60).collect();
        let (kv, _) = m.prefill_tokens(&toks, PrefillMode::Exact);
        (m, kv)
    }

    #[test]
    fn quantized_scores_track_exact_topk() {
        let (m, kv) = setup(48);
        let cfg = SelectorConfig {
            budget: 12,
            sinks: 0,
            recent: 0,
            ..SelectorConfig::with_budget(12)
        };
        let mut skv = ShadowKvSelector::preprocess(&kv, cfg);
        let (keys0, g) = match &kv.layers[0] {
            spec_model::LayerKv::PerHead { keys, .. } => (keys[0].clone(), m.geometry()),
            _ => unreachable!(),
        };
        let query = keys0.row(17).to_vec();
        let rows: Vec<&[f32]> = (0..g.q_heads).map(|_| query.as_slice()).collect();
        let queries = Matrix::from_rows(&rows);
        let mut scratch = SelectScratch::new();
        let sel = skv
            .select(0, &queries, &kv.layers[0], &mut scratch)
            .unwrap();
        // The exact top-1 position for this query is position 17 itself;
        // int4 scoring must keep it in the selection.
        assert!(sel[0].contains(&17));
    }

    #[test]
    fn budget_and_retention_semantics() {
        let (m, mut kv) = setup(32);
        let cfg = SelectorConfig::with_budget(10);
        let mut skv = ShadowKvSelector::preprocess(&kv, cfg);
        let emb = m.embed_tokens(&[2, 3, 4]);
        for i in 0..3 {
            m.decode_step(emb.row(i), 32 + i, &mut kv);
        }
        let g = m.geometry();
        let queries = Matrix::from_vec(g.q_heads, g.head_dim, vec![0.1; g.q_heads * g.head_dim]);
        let mut scratch = SelectScratch::new();
        let sel = skv
            .select(0, &queries, &kv.layers[0], &mut scratch)
            .unwrap();
        for head in &sel {
            assert!(head.contains(&32) && head.contains(&34));
            // Budget bounds the prefix part only.
            let prefix_count = head.iter().filter(|&&p| p < 32).count();
            assert!(prefix_count <= 10 + cfg.sinks + cfg.recent);
        }
    }

    #[test]
    fn scratch_selection_matches_reference() {
        let (m, kv) = setup(40);
        let mut grown = kv.clone();
        let emb = m.embed_tokens(&[2, 9]);
        m.decode_step(emb.row(0), 40, &mut grown);
        m.decode_step(emb.row(1), 41, &mut grown);
        for (budget, sinks, recent) in [(5, 0, 0), (12, 2, 3), (33, 4, 8), (64, 1, 2)] {
            let cfg = SelectorConfig {
                budget,
                sinks,
                recent,
                ..SelectorConfig::with_budget(budget)
            };
            let mut skv = ShadowKvSelector::preprocess(&kv, cfg);
            let g = m.geometry();
            let vals: Vec<f32> = (0..g.q_heads * g.head_dim)
                .map(|i| ((i * 23 + budget) as f32 * 0.37).sin())
                .collect();
            let queries = Matrix::from_vec(g.q_heads, g.head_dim, vals);
            let mut scratch = SelectScratch::new();
            for layer in 0..g.layers {
                assert_eq!(
                    skv.select(layer, &queries, &grown.layers[layer], &mut scratch),
                    skv.select_reference(layer, &queries, &grown.layers[layer]),
                    "budget={budget} layer={layer}"
                );
            }
        }
    }

    #[test]
    fn shadow_is_much_smaller_than_full_keys() {
        let (m, kv) = setup(64);
        let skv = ShadowKvSelector::preprocess(&kv, SelectorConfig::default());
        let g = m.geometry();
        // At the tiny head_dim (8) the per-vector scale dominates; at the
        // real head_dim (128) int4 shadows are ~7.5x smaller. Assert the
        // direction here and the real ratio arithmetically.
        let full_bytes = g.layers * g.kv_heads * 64 * g.head_dim * 4;
        assert!(
            skv.shadow_bytes() * 2 <= full_bytes,
            "shadow {} vs full {}",
            skv.shadow_bytes(),
            full_bytes
        );
        let real_shadow = spec_tensor::quant::BitWidth::Int4.storage_bytes(128) + 4;
        assert!(real_shadow * 7 < 128 * 4);
    }
}
