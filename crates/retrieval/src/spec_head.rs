//! The SpeContext selection: mapping retrieval-head attention weights to a
//! whole-model sparse plan *before* LLM inference (paper Section 4.3).
//!
//! Unlike the layer-wise baselines, SpeContext produces the complete
//! selection for every layer and KV head from a single retrieval-head
//! pass over the input, which is what removes the per-layer
//! retrieve-and-load data dependency (Section 5.1). The mapping depends
//! on the LLM's attention mechanism:
//!
//! * **MHA** (Fig. 5(b)): DLM head *i* selects for LLM KV head *i*.
//! * **GQA** (Fig. 5(c)): element-wise max over each group's DLM heads
//!   produces the group-level weights; top-k per KV head.
//! * **MQA** (Fig. 5(d)): a single group over all heads.
//! * **MLA** (Fig. 5(e)): per head like MHA; the selection gathers latent
//!   `c` rows, which are up-projected per head after the gather.
//!
//! A batch-level mapping (one shared selection for all heads) is provided
//! for the Fig. 5(a) comparison — head-level wins.

use crate::common::{
    assemble_budgeted_selection, assemble_budgeted_selection_reference, group_max_scores,
    SelectorConfig,
};
use serde::{Deserialize, Serialize};
use spec_model::{AttentionKind, RetrievalHead, RetrievalHeadState, SimGeometry, SparsePlan};
use spec_tensor::topk::{PosBitSet, SelectScratch};

/// Mapping granularity of retrieval-head weights onto the LLM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingLevel {
    /// Per-head selection (the paper's choice).
    Head,
    /// One coarse selection shared by all heads (ablation of Fig. 5(a)).
    Batch,
}

/// Below this many head x position score entries, assembling the
/// per-head selections serially beats the scoped-spawn overhead.
const PAR_SELECT_MIN: usize = 1 << 14;

/// A whole-model selection produced before LLM inference.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecSelection {
    /// Per-KV-head position lists (identical across layers).
    pub per_head: Vec<Vec<usize>>,
    /// Budget used.
    pub budget: usize,
}

impl SpecSelection {
    /// Builds the selection from head-level retrieval scores.
    ///
    /// `scores[h]` is the retrieval head's softmax distribution for DLM
    /// head `h` over all cache positions; `geom` is the **LLM's**
    /// geometry (the DLM always exposes one score vector per LLM query
    /// head).
    ///
    /// # Panics
    ///
    /// Panics if `scores.len()` differs from the LLM's query-head count.
    pub fn from_head_scores(
        scores: &[Vec<f32>],
        geom: &SimGeometry,
        cfg: &SelectorConfig,
        level: MappingLevel,
    ) -> Self {
        let mut scratch = SelectScratch::new();
        Self::from_head_scores_scratch(scores, geom, cfg, level, &mut scratch)
    }

    /// As [`from_head_scores`](Self::from_head_scores), pooling and
    /// assembling on a caller-owned [`SelectScratch`] (the
    /// zero-allocation hot path for serial-sized inputs). Above
    /// [`PAR_SELECT_MIN`] the per-head assembly fans out over the worker
    /// pool with one local scratch per head — the allocation is amortized
    /// by the work, and the output is identical at any thread count.
    pub fn from_head_scores_scratch(
        scores: &[Vec<f32>],
        geom: &SimGeometry,
        cfg: &SelectorConfig,
        level: MappingLevel,
        scratch: &mut SelectScratch,
    ) -> Self {
        assert_eq!(
            scores.len(),
            geom.q_heads,
            "expected one score vector per LLM query head"
        );
        let seq_len = scores[0].len();
        let per_head: Vec<Vec<usize>> = match level {
            MappingLevel::Head => {
                let group = match geom.attention {
                    AttentionKind::Mha | AttentionKind::Mla => 1,
                    AttentionKind::Gqa | AttentionKind::Mqa => geom.group_size(),
                };
                let kv_heads = model_kv_heads(geom);
                assert_eq!(scores.len() / group, kv_heads, "group mapping mismatch");
                // Heads are independent: fan the per-head top-k assembly
                // out over the worker pool (order-preserving, so the
                // selection is identical at any thread count).
                if kv_heads > 1 && kv_heads * seq_len >= PAR_SELECT_MIN {
                    let grouped = group_max_scores(scores, group);
                    spec_parallel::par_map(&grouped, |s| {
                        let mut local = SelectScratch::new();
                        assemble_budgeted_selection(
                            s,
                            seq_len,
                            cfg,
                            &mut local.rank,
                            &mut local.marks,
                        )
                        .0
                    })
                } else {
                    let SelectScratch {
                        scores: arena,
                        rank,
                        marks,
                    } = scratch;
                    (0..kv_heads)
                        .map(|hh| {
                            arena.pool_group_max(hh * group..(hh + 1) * group, |q, buf| {
                                buf.clear();
                                buf.extend_from_slice(&scores[q]);
                            });
                            assemble_budgeted_selection(&arena.pooled, seq_len, cfg, rank, marks).0
                        })
                        .collect()
                }
            }
            MappingLevel::Batch => {
                let SelectScratch {
                    scores: arena,
                    rank,
                    marks,
                } = scratch;
                arena.pool_group_max(0..scores.len(), |q, buf| {
                    buf.clear();
                    buf.extend_from_slice(&scores[q]);
                });
                let sel = assemble_budgeted_selection(&arena.pooled, seq_len, cfg, rank, marks).0;
                vec![sel; model_kv_heads(geom)]
            }
        };
        Self {
            per_head,
            budget: cfg.budget,
        }
    }

    /// The original mapping path (allocating group-max + `BTreeSet`
    /// assembly, serial), kept as the property-test reference.
    pub fn from_head_scores_reference(
        scores: &[Vec<f32>],
        geom: &SimGeometry,
        cfg: &SelectorConfig,
        level: MappingLevel,
    ) -> Self {
        assert_eq!(
            scores.len(),
            geom.q_heads,
            "expected one score vector per LLM query head"
        );
        let seq_len = scores[0].len();
        let per_head: Vec<Vec<usize>> = match level {
            MappingLevel::Head => {
                let group = match geom.attention {
                    AttentionKind::Mha | AttentionKind::Mla => 1,
                    AttentionKind::Gqa | AttentionKind::Mqa => geom.group_size(),
                };
                let grouped = group_max_scores(scores, group);
                assert_eq!(
                    grouped.len(),
                    model_kv_heads(geom),
                    "group mapping mismatch"
                );
                grouped
                    .iter()
                    .map(|s| assemble_budgeted_selection_reference(s, seq_len, cfg).0)
                    .collect()
            }
            MappingLevel::Batch => {
                let pooled = group_max_scores(scores, scores.len());
                let sel = assemble_budgeted_selection_reference(&pooled[0], seq_len, cfg).0;
                vec![sel; model_kv_heads(geom)]
            }
        };
        Self {
            per_head,
            budget: cfg.budget,
        }
    }

    /// Expands into a [`SparsePlan`] applying the selection to every layer.
    pub fn to_plan(&self, layers: usize) -> SparsePlan {
        SparsePlan {
            layers: vec![Some(self.per_head.clone()); layers],
        }
    }

    /// The union of all heads' positions (the set of KV entries that must
    /// be resident on the GPU; per-head slots alias into it).
    pub fn union_positions(&self) -> Vec<usize> {
        // Position lists are sorted, so the maximum is each list's tail.
        let len = self
            .per_head
            .iter()
            .filter_map(|h| h.last().map(|&p| p + 1))
            .max()
            .unwrap_or(0);
        let mut marks = PosBitSet::default();
        marks.reset(len);
        for h in &self.per_head {
            for &p in h {
                marks.mark(p);
            }
        }
        marks.collect_sorted()
    }
}

/// Number of KV-head-level selections the LLM needs.
fn model_kv_heads(geom: &SimGeometry) -> usize {
    match geom.attention {
        // MLA gathers latent rows per (query) head.
        AttentionKind::Mla => geom.kv_heads,
        _ => geom.kv_heads,
    }
}

/// Drives a retrieval head across a decode session: appends each token
/// and produces the pre-inference selection for the next LLM step.
#[derive(Debug, Clone)]
pub struct SpecContextRetriever {
    head: RetrievalHead,
    state: RetrievalHeadState,
    cfg: SelectorConfig,
    level: MappingLevel,
    /// Exponential moving average of observed embeddings — a stand-in for
    /// the DLM's hidden-state input (EAGLE-3 feeds hidden features), which
    /// varies slowly across adjacent tokens.
    ema: Vec<f32>,
}

/// EMA decay for the context average.
const EMA_DECAY: f32 = 0.9;

fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

impl SpecContextRetriever {
    /// Creates a retriever around a pruned retrieval head.
    pub fn new(head: RetrievalHead, cfg: SelectorConfig, level: MappingLevel) -> Self {
        let state = head.new_state();
        Self {
            head,
            state,
            cfg,
            level,
            ema: Vec::new(),
        }
    }

    /// Appends an embedded token to the head's key cache (run for every
    /// prompt token during prefill and every generated token thereafter).
    pub fn observe(&mut self, emb: &[f32]) {
        if self.ema.is_empty() {
            self.ema = emb.to_vec();
        } else {
            for (e, x) in self.ema.iter_mut().zip(emb) {
                *e = EMA_DECAY * *e + (1.0 - EMA_DECAY) * x;
            }
        }
        self.head.append(emb, &mut self.state);
    }

    /// Number of observed positions.
    pub fn observed(&self) -> usize {
        self.state.len()
    }

    /// Produces the selection for the upcoming LLM step whose input
    /// embedding is `query_emb` (the token about to be fed to the LLM).
    ///
    /// The effective retrieval query blends the token embedding with the
    /// context EMA per `cfg.query_smoothing`.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been observed yet.
    pub fn select(&self, query_emb: &[f32], llm_geom: &SimGeometry) -> SpecSelection {
        let mut scratch = SelectScratch::new();
        self.select_scratch(query_emb, llm_geom, &mut scratch)
    }

    /// As [`select`](Self::select), assembling on a caller-owned
    /// [`SelectScratch`] so a decode loop reuses one warm workspace.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been observed yet.
    pub fn select_scratch(
        &self,
        query_emb: &[f32],
        llm_geom: &SimGeometry,
        scratch: &mut SelectScratch,
    ) -> SpecSelection {
        let lambda = self.cfg.query_smoothing.clamp(0.0, 1.0);
        let blended: Vec<f32> = if lambda > 0.0 && !self.ema.is_empty() {
            // Blend unit directions: the head RMS-norms its query, so only
            // the direction matters, and the raw EMA norm is much smaller
            // than a token embedding's.
            let nq = norm(query_emb).max(1e-9);
            let ne = norm(&self.ema).max(1e-9);
            query_emb
                .iter()
                .zip(&self.ema)
                .map(|(q, e)| (1.0 - lambda) * q / nq + lambda * e / ne)
                .collect()
        } else {
            query_emb.to_vec()
        };
        let scores = self.head.head_scores(&blended, &self.state);
        SpecSelection::from_head_scores_scratch(&scores, llm_geom, &self.cfg, self.level, scratch)
    }

    /// The selector configuration.
    pub fn config(&self) -> &SelectorConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{DistillOptions, Dlm, Model, PrefillMode};
    use spec_tensor::stats;

    fn head_and_model(kind: AttentionKind) -> (Model, RetrievalHead) {
        let geom = SimGeometry::tiny(kind);
        let m = Model::new(geom, 51);
        let head = Dlm::distill(&m, DistillOptions::default()).to_retrieval_head();
        (m, head)
    }

    fn fake_scores(heads: usize, n: usize, peak: usize) -> Vec<Vec<f32>> {
        (0..heads)
            .map(|h| {
                let mut s = vec![0.01; n];
                s[(peak + h) % n] = 0.9;
                s
            })
            .collect()
    }

    #[test]
    fn head_level_selection_differs_per_kv_head() {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let scores = fake_scores(geom.q_heads, 64, 10);
        let cfg = SelectorConfig {
            budget: 4,
            sinks: 1,
            recent: 1,
            ..SelectorConfig::with_budget(4)
        };
        let sel = SpecSelection::from_head_scores(&scores, &geom, &cfg, MappingLevel::Head);
        assert_eq!(sel.per_head.len(), geom.kv_heads);
        // Heads peak at different positions -> different selections.
        assert_ne!(sel.per_head[0], sel.per_head[1]);
    }

    #[test]
    fn batch_level_selection_is_shared() {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let scores = fake_scores(geom.q_heads, 64, 10);
        let cfg = SelectorConfig::with_budget(8);
        let sel = SpecSelection::from_head_scores(&scores, &geom, &cfg, MappingLevel::Batch);
        assert!(sel.per_head.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn gqa_group_max_pulls_in_each_members_peak() {
        let geom = SimGeometry::tiny(AttentionKind::Gqa); // 4 q heads, 2 kv heads
        let n = 32;
        let mut scores = vec![vec![0.0; n]; geom.q_heads];
        scores[0][5] = 0.9; // group 0 member
        scores[1][9] = 0.8; // group 0 member
        scores[2][20] = 0.7; // group 1
        scores[3][21] = 0.6; // group 1
        let cfg = SelectorConfig {
            budget: 4,
            sinks: 0,
            recent: 0,
            ..SelectorConfig::with_budget(4)
        };
        let sel = SpecSelection::from_head_scores(&scores, &geom, &cfg, MappingLevel::Head);
        assert!(sel.per_head[0].contains(&5) && sel.per_head[0].contains(&9));
        assert!(sel.per_head[1].contains(&20) && sel.per_head[1].contains(&21));
    }

    #[test]
    fn plan_covers_every_layer() {
        let geom = SimGeometry::tiny(AttentionKind::Mqa);
        let scores = fake_scores(geom.q_heads, 16, 3);
        let sel = SpecSelection::from_head_scores(
            &scores,
            &geom,
            &SelectorConfig::with_budget(4),
            MappingLevel::Head,
        );
        let plan = sel.to_plan(geom.layers);
        assert_eq!(plan.layers.len(), geom.layers);
        plan.validate(16, geom.kv_heads).unwrap();
    }

    #[test]
    fn retriever_end_to_end_for_all_kinds() {
        for kind in [
            AttentionKind::Mha,
            AttentionKind::Gqa,
            AttentionKind::Mqa,
            AttentionKind::Mla,
        ] {
            let (m, head) = head_and_model(kind);
            let cfg = SelectorConfig {
                budget: 8,
                sinks: 2,
                recent: 2,
                ..SelectorConfig::with_budget(8)
            };
            let mut retr = SpecContextRetriever::new(head, cfg, MappingLevel::Head);
            let tokens: Vec<usize> = (0..24).collect();
            let emb = m.embed_tokens(&tokens);
            for r in 0..emb.rows() {
                retr.observe(emb.row(r));
            }
            let sel = retr.select(emb.row(23), m.geometry());
            let plan = sel.to_plan(m.geometry().layers);
            plan.validate(24, m.geometry().kv_heads)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));

            // The plan must run through the model.
            let (mut kv, _) = m.prefill_embeddings(&emb, PrefillMode::Exact);
            let out = m.decode_step_sparse(emb.row(0), 24, &mut kv, &plan);
            assert!(out.logits.iter().all(|v| v.is_finite()), "{kind}");
        }
    }

    #[test]
    fn scratch_mapping_matches_reference_across_thread_counts() {
        // Sizes straddling PAR_SELECT_MIN so both the serial scratch path
        // and the parallel fan-out are pinned to the reference.
        for kind in [AttentionKind::Mha, AttentionKind::Gqa, AttentionKind::Mqa] {
            let geom = SimGeometry::tiny(kind);
            for n in [96, PAR_SELECT_MIN / geom.kv_heads + 5] {
                let scores: Vec<Vec<f32>> = (0..geom.q_heads)
                    .map(|h| {
                        (0..n)
                            .map(|i| ((i * 7 + h * 13) as f32 * 0.53).sin())
                            .collect()
                    })
                    .collect();
                let cfg = SelectorConfig {
                    budget: 24,
                    sinks: 2,
                    recent: 3,
                    ..SelectorConfig::with_budget(24)
                };
                for level in [MappingLevel::Head, MappingLevel::Batch] {
                    let want =
                        SpecSelection::from_head_scores_reference(&scores, &geom, &cfg, level);
                    for threads in [1usize, 2, 7] {
                        let got = spec_parallel::with_threads(threads, || {
                            SpecSelection::from_head_scores(&scores, &geom, &cfg, level)
                        });
                        assert_eq!(got, want, "{kind} n={n} threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn adjacent_step_selections_overlap_strongly() {
        // Fig. 6(b): consecutive decode steps select similar positions.
        let (m, head) = head_and_model(AttentionKind::Gqa);
        let cfg = SelectorConfig::with_budget(16);
        let mut retr = SpecContextRetriever::new(head, cfg, MappingLevel::Head);
        let tokens: Vec<usize> = (0..48).map(|i| (i * 5) % 60).collect();
        let emb = m.embed_tokens(&tokens);
        for r in 0..emb.rows() {
            retr.observe(emb.row(r));
        }
        let s1 = retr.select(emb.row(46), m.geometry());
        let s2 = retr.select(emb.row(47), m.geometry());
        let overlap = stats::overlap_rate(&s1.per_head[0], &s2.per_head[0]);
        assert!(overlap > 0.5, "adjacent overlap {overlap}");
    }
}
