//! Permanent-eviction baselines: SlidingWindow and StreamingLLM.
//!
//! Both are input-agnostic, query-independent policies (paper Section 2.2):
//! SlidingWindow keeps only the most recent `window` positions;
//! StreamingLLM (Xiao et al., 2023) additionally pins the first `sinks`
//! positions — the "attention sink" phenomenon.

use spec_model::{LayerKv, LayerSelector};
use spec_tensor::topk::SelectScratch;
use spec_tensor::Matrix;

/// Keep only the last `window` positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlidingWindow {
    /// Window width in tokens.
    pub window: usize,
}

impl SlidingWindow {
    /// Creates a sliding window of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { window }
    }
}

impl LayerSelector for SlidingWindow {
    fn select(
        &mut self,
        _layer: usize,
        _queries: &Matrix,
        kv: &LayerKv,
        _scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>> {
        let len = kv.seq_len();
        let lo = len.saturating_sub(self.window);
        let positions: Vec<usize> = (lo..len).collect();
        Some(vec![positions; kv_heads(kv)])
    }
}

/// StreamingLLM: attention sinks plus a sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingLlm {
    /// Pinned initial positions.
    pub sinks: usize,
    /// Recent window width.
    pub window: usize,
}

impl StreamingLlm {
    /// Creates a StreamingLLM policy.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(sinks: usize, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { sinks, window }
    }
}

impl LayerSelector for StreamingLlm {
    fn select(
        &mut self,
        _layer: usize,
        _queries: &Matrix,
        kv: &LayerKv,
        _scratch: &mut SelectScratch,
    ) -> Option<Vec<Vec<usize>>> {
        let len = kv.seq_len();
        let lo = len.saturating_sub(self.window);
        let mut positions: Vec<usize> = Vec::with_capacity(self.sinks.min(lo) + (len - lo));
        positions.extend(0..self.sinks.min(lo));
        positions.extend(lo..len);
        Some(vec![positions; kv_heads(kv)])
    }
}

fn kv_heads(kv: &LayerKv) -> usize {
    match kv {
        LayerKv::PerHead { keys, .. } => keys.len(),
        LayerKv::Latent { .. } => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_model::{AttentionKind, Model, PrefillMode, SimGeometry};

    fn cache(n: usize) -> LayerKv {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let m = Model::new(geom, 5);
        let toks: Vec<usize> = (0..n).collect();
        let (kv, _) = m.prefill_tokens(&toks, PrefillMode::Exact);
        kv.layers.into_iter().next().unwrap()
    }

    #[test]
    fn sliding_window_keeps_tail() {
        let kv = cache(10);
        let mut w = SlidingWindow::new(3);
        let sel = w
            .select(0, &Matrix::default(), &kv, &mut SelectScratch::new())
            .unwrap();
        assert_eq!(sel[0], vec![7, 8, 9]);
    }

    #[test]
    fn sliding_window_smaller_sequence() {
        let kv = cache(2);
        let mut w = SlidingWindow::new(5);
        let sel = w
            .select(0, &Matrix::default(), &kv, &mut SelectScratch::new())
            .unwrap();
        assert_eq!(sel[0], vec![0, 1]);
    }

    #[test]
    fn streaming_keeps_sinks_and_tail() {
        let kv = cache(12);
        let mut s = StreamingLlm::new(2, 3);
        let sel = s
            .select(0, &Matrix::default(), &kv, &mut SelectScratch::new())
            .unwrap();
        assert_eq!(sel[0], vec![0, 1, 9, 10, 11]);
    }

    #[test]
    fn streaming_no_overlap_when_window_covers_sinks() {
        let kv = cache(4);
        let mut s = StreamingLlm::new(2, 10);
        let sel = s
            .select(0, &Matrix::default(), &kv, &mut SelectScratch::new())
            .unwrap();
        assert_eq!(sel[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_heads_share_policy() {
        let kv = cache(8);
        let mut s = StreamingLlm::new(1, 2);
        let sel = s
            .select(0, &Matrix::default(), &kv, &mut SelectScratch::new())
            .unwrap();
        assert!(sel.windows(2).all(|w| w[0] == w[1]));
    }
}
