//! KV retrieval algorithms: the SpeContext retrieval head and every
//! baseline the paper compares against.
//!
//! All algorithms implement `spec_model::LayerSelector` (the layer-wise
//! query-aware interface of the dynamic-selection paradigm) or produce a
//! whole-model `SparsePlan` ahead of the forward pass (the speculative
//! paradigm of SpeContext). The implementations are complete from-scratch
//! ports of each baseline's selection mechanism:
//!
//! | module | algorithm | preprocessing |
//! |---|---|---|
//! | [`full`] | full (dense) attention | none |
//! | [`window`] | SlidingWindow, StreamingLLM | none (static policy) |
//! | [`quest`] | Quest (Tang et al. 2024) | paging + min/max page vectors |
//! | [`clusterkv`] | ClusterKV (Liu et al. 2024) | k-means over keys |
//! | [`shadowkv`] | ShadowKV (Sun et al. 2024) | int4 key quantization |
//! | [`spec_head`] | SpeContext retrieval head | DLM distillation (offline) |
//! | [`infinigen`] | InfiniGen speculative per-layer prefetch | none |
//! | [`oracle`] | teacher's own attention (upper bound) | none |

pub mod clusterkv;
pub mod common;
pub mod full;
pub mod infinigen;
pub mod oracle;
pub mod quest;
pub mod shadowkv;
pub mod spec_head;
pub mod window;

pub use common::{SelectionStats, SelectorConfig};
pub use full::FullAttention;
pub use spec_head::{MappingLevel, SpecSelection};

/// Identifies a retrieval system in reports and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SystemId {
    /// HuggingFace eager full attention.
    FullEager,
    /// Full attention with FlashAttention kernels.
    FullFlash,
    /// Full attention with FlashInfer kernels.
    FullFlashInfer,
    /// Sliding-window permanent eviction.
    SlidingWindow,
    /// StreamingLLM (sinks + window).
    StreamingLlm,
    /// Quest paged dynamic selection.
    Quest,
    /// ClusterKV clustered dynamic selection.
    ClusterKv,
    /// ShadowKV quantized-key dynamic selection.
    ShadowKv,
    /// SpeContext (this paper).
    SpeContext,
}

impl std::fmt::Display for SystemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SystemId::FullEager => "Full Attn (Eager)",
            SystemId::FullFlash => "Full Attn (Flash Attn)",
            SystemId::FullFlashInfer => "Full Attn (FlashInfer)",
            SystemId::SlidingWindow => "Sliding Window",
            SystemId::StreamingLlm => "StreamingLLM",
            SystemId::Quest => "Quest",
            SystemId::ClusterKv => "ClusterKV",
            SystemId::ShadowKv => "ShadowKV",
            SystemId::SpeContext => "SpeContext (Ours)",
        };
        f.write_str(s)
    }
}
