//! ASCII Gantt rendering of span timelines.
//!
//! Turns a list of [`Span`]s — from an
//! [`EventSim`](crate::event::EventSim) record list or any other
//! producer — into the kind of two-stream timeline diagram the paper
//! draws in Fig. 7, so benches and examples can show *where* the overlap
//! happens, not just the makespan.

use crate::event::{EventSim, Span, StreamId};

/// Renders a span list as one row per stream, `width` characters wide.
///
/// Each span paints its interval with the first letter of its label
/// (after the last `.`); idle time is `.`. Spans shorter than one cell
/// still paint one cell, so very short ops remain visible (at the cost
/// of slight horizontal distortion).
pub fn render_spans(spans: &[Span], streams: &[(StreamId, &str)], width: usize) -> String {
    let width = width.max(10);
    let makespan = spans
        .iter()
        .map(|s| s.end)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let scale = width as f64 / makespan;
    let mut out = String::new();
    for &(stream, name) in streams {
        let mut row = vec!['.'; width];
        for s in spans {
            if s.stream != stream {
                continue;
            }
            let a = ((s.start * scale) as usize).min(width - 1);
            let b = (((s.end * scale) as usize).max(a + 1)).min(width);
            let c = s
                .label
                .rsplit('.')
                .next()
                .and_then(|s| s.chars().next())
                .unwrap_or('#');
            for cell in row.iter_mut().take(b).skip(a) {
                *cell = c;
            }
        }
        out.push_str(&format!("{name:>8} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>8}  0{}{:.2} ms\n",
        "",
        " ".repeat(width.saturating_sub(9)),
        makespan * 1e3
    ));
    out
}

/// Renders an event simulator's timeline: [`render_spans`] over
/// [`EventSim::spans`].
pub fn render(sim: &EventSim, streams: &[(StreamId, &str)], width: usize) -> String {
    render_spans(&sim.spans(), streams, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{COMPUTE, COPY};

    #[test]
    fn renders_two_streams_with_overlap() {
        let mut sim = EventSim::new(2);
        let f = sim.submit("L0.fetch", COPY, 1.0, &[]);
        sim.submit("L0.attn", COMPUTE, 0.5, &[f]);
        sim.submit("L0.ffn", COMPUTE, 0.5, &[]);
        let g = render(&sim, &[(COMPUTE, "compute"), (COPY, "copy")], 40);
        assert!(g.contains("compute"));
        assert!(g.contains("copy"));
        // The copy row is busy (f) for the first ~2/3 of the width.
        let copy_row = g.lines().nth(1).unwrap();
        assert!(copy_row.matches('f').count() > 10);
    }

    #[test]
    fn idle_time_is_dotted() {
        let mut sim = EventSim::new(1);
        let a = sim.submit("a", COMPUTE, 0.1, &[]);
        // Big gap enforced through a fake dependency on a later op.
        let b = sim.submit("wait", COMPUTE, 0.8, &[a]);
        sim.submit("z", COMPUTE, 0.1, &[b]);
        let g = render(&sim, &[(COMPUTE, "compute")], 30);
        assert!(!g.contains(".........................."), "row mostly busy");
    }

    #[test]
    fn tiny_ops_still_visible() {
        // A near-zero-duration op at the end of the row still paints a
        // cell (later ops would otherwise be invisible).
        let mut sim = EventSim::new(1);
        sim.submit("later", COMPUTE, 1.0, &[]);
        sim.submit("x", COMPUTE, 1e-9, &[]);
        let g = render(&sim, &[(COMPUTE, "c")], 50);
        assert!(g.contains('x'));
    }

    #[test]
    fn bare_spans_render_without_a_simulator() {
        let spans = vec![
            Span::new(COMPUTE, 0.0, 0.5, "attn"),
            Span::new(COPY, 0.25, 1.0, "fetch"),
        ];
        let g = render_spans(&spans, &[(COMPUTE, "compute"), (COPY, "copy")], 40);
        assert!(g.lines().next().unwrap().contains('a'));
        assert!(g.lines().nth(1).unwrap().contains('f'));
    }

    #[test]
    fn render_matches_render_spans_on_sim_records() {
        let mut sim = EventSim::new(2);
        let f = sim.submit("L0.fetch", COPY, 1.0, &[]);
        sim.submit("L0.attn", COMPUTE, 0.7, &[f]);
        let streams = [(COMPUTE, "compute"), (COPY, "copy")];
        assert_eq!(
            render(&sim, &streams, 60),
            render_spans(&sim.spans(), &streams, 60)
        );
    }
}
