//! ASCII Gantt rendering of event-simulator timelines.
//!
//! Turns an [`EventSim`](crate::event::EventSim) record list into the
//! kind of two-stream timeline diagram the paper draws in Fig. 7, so
//! benches and examples can show *where* the overlap happens, not just
//! the makespan.

use crate::event::{EventSim, StreamId};

/// Renders the timeline as one row per stream, `width` characters wide.
///
/// Each op paints its span with the first letter of its label; idle time
/// is `.`. Ops shorter than one cell still paint one cell, so very short
/// ops remain visible (at the cost of slight horizontal distortion).
pub fn render(sim: &EventSim, streams: &[(StreamId, &str)], width: usize) -> String {
    let width = width.max(10);
    let makespan = sim.makespan().max(1e-12);
    let scale = width as f64 / makespan;
    let mut out = String::new();
    for &(stream, name) in streams {
        let mut row = vec!['.'; width];
        for r in sim.records() {
            if r.stream != stream {
                continue;
            }
            let a = ((r.start * scale) as usize).min(width - 1);
            let b = (((r.end * scale) as usize).max(a + 1)).min(width);
            let c = r
                .label
                .rsplit('.')
                .next()
                .and_then(|s| s.chars().next())
                .unwrap_or('#');
            for cell in row.iter_mut().take(b).skip(a) {
                *cell = c;
            }
        }
        out.push_str(&format!("{name:>8} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>8}  0{}{:.2} ms\n",
        "",
        " ".repeat(width.saturating_sub(9)),
        makespan * 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{COMPUTE, COPY};

    #[test]
    fn renders_two_streams_with_overlap() {
        let mut sim = EventSim::new(2);
        let f = sim.submit("L0.fetch", COPY, 1.0, &[]);
        sim.submit("L0.attn", COMPUTE, 0.5, &[f]);
        sim.submit("L0.ffn", COMPUTE, 0.5, &[]);
        let g = render(&sim, &[(COMPUTE, "compute"), (COPY, "copy")], 40);
        assert!(g.contains("compute"));
        assert!(g.contains("copy"));
        // The copy row is busy (f) for the first ~2/3 of the width.
        let copy_row = g.lines().nth(1).unwrap();
        assert!(copy_row.matches('f').count() > 10);
    }

    #[test]
    fn idle_time_is_dotted() {
        let mut sim = EventSim::new(1);
        let a = sim.submit("a", COMPUTE, 0.1, &[]);
        // Big gap enforced through a fake dependency on a later op.
        let b = sim.submit("wait", COMPUTE, 0.8, &[a]);
        sim.submit("z", COMPUTE, 0.1, &[b]);
        let g = render(&sim, &[(COMPUTE, "compute")], 30);
        assert!(!g.contains(".........................."), "row mostly busy");
    }

    #[test]
    fn tiny_ops_still_visible() {
        // A near-zero-duration op at the end of the row still paints a
        // cell (later ops would otherwise be invisible).
        let mut sim = EventSim::new(1);
        sim.submit("later", COMPUTE, 1.0, &[]);
        sim.submit("x", COMPUTE, 1e-9, &[]);
        let g = render(&sim, &[(COMPUTE, "c")], 50);
        assert!(g.contains('x'));
    }
}
