//! Analytical + discrete-event hardware simulator.
//!
//! The paper's throughput results (Table 3, Figs. 10–11) are properties of
//! a bandwidth/compute-bound pipeline: how long each kernel takes on the
//! GPU, how long each KV transfer takes over PCIe, and how much of the two
//! overlaps. This crate reproduces that pipeline:
//!
//! * [`device`] — device specifications (A100-80GB cloud node, RTX 4060
//!   Laptop edge node) with bandwidths, FLOPS and capacities;
//! * [`cost`] — a roofline kernel cost model parameterized by an engine
//!   efficiency profile (eager / FlashAttention / FlashInfer);
//! * [`event`] — a two-stream discrete-event simulator (compute stream +
//!   copy stream) with dependencies, the substrate for the asynchronous
//!   prefetch dataflow of Section 5;
//! * [`transfer`] — CPU↔GPU transfer timing;
//! * [`link`] — inter-replica interconnect classes (NVLink/InfiniBand/
//!   Ethernet) pricing the prefill→decode KV hop in disaggregated
//!   fleets;
//! * [`fleet`] — replica slot lists with per-slot
//!   [`ReplicaRole`](fleet::ReplicaRole)s and fleet-level $/hour.
//!
//! Everything is in SI seconds and bytes; no wall-clock measurement is
//! involved, so results are exactly reproducible.

pub mod cost;
pub mod device;
pub mod energy;
pub mod event;
pub mod fleet;
pub mod gantt;
pub mod link;
pub mod transfer;

pub use cost::{EngineProfile, KernelCost};
pub use device::DeviceSpec;
pub use energy::EnergyModel;
pub use event::{EventSim, OpRecord, StreamId};
pub use fleet::{Fleet, FleetSlot, ReplicaRole};
pub use link::LinkSpec;
pub use transfer::TransferEngine;
