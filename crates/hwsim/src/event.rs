//! Two-stream discrete-event simulator.
//!
//! Models CUDA-style streams: operations on the same stream serialize;
//! operations on different streams run concurrently unless ordered by an
//! explicit dependency (the analogue of a CUDA event wait). This is the
//! substrate on which the runtime lays out the five dataflow paradigms of
//! paper Fig. 7.

use serde::{Deserialize, Serialize};

/// Identifies a stream in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamId(pub usize);

/// The compute stream (convention used by the runtime).
pub const COMPUTE: StreamId = StreamId(0);
/// The copy/prefetch stream.
pub const COPY: StreamId = StreamId(1);

/// A completed-op record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Op label (e.g. `"L3.attn"`, `"L3.kv_fetch"`).
    pub label: String,
    /// Stream it ran on.
    pub stream: StreamId,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// One labelled interval on a stream — the timeline model shared by the
/// ASCII gantt renderer ([`crate::gantt::render_spans`]) and the
/// `spec_telemetry` Perfetto exporter: anything that can describe its
/// activity as spans can be drawn by either backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Stream (track/row) the interval belongs to.
    pub stream: StreamId,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Human-readable label.
    pub label: String,
}

impl Span {
    /// Builds a span from its fields.
    pub fn new(stream: StreamId, start: f64, end: f64, label: impl Into<String>) -> Self {
        Self {
            stream,
            start,
            end,
            label: label.into(),
        }
    }

    /// The interval's length, seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

impl From<&OpRecord> for Span {
    fn from(r: &OpRecord) -> Self {
        Span::new(r.stream, r.start, r.end, r.label.clone())
    }
}

/// Handle returned by [`EventSim::submit`], usable as a dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpHandle(usize);

/// The simulator.
///
/// # Example
///
/// ```
/// use spec_hwsim::event::{EventSim, COMPUTE, COPY};
///
/// let mut sim = EventSim::new(2);
/// let load = sim.submit("load", COPY, 1.0, &[]);
/// let attn = sim.submit("attn", COMPUTE, 0.5, &[load]); // waits for load
/// let ffn = sim.submit("ffn", COMPUTE, 0.5, &[]);        // independent
/// assert_eq!(sim.end_of(attn), 1.5);
/// assert_eq!(sim.makespan(), 2.0);
/// # let _ = ffn;
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventSim {
    stream_free: Vec<f64>,
    records: Vec<OpRecord>,
}

impl EventSim {
    /// Creates a simulator with `streams` streams, all free at t=0.
    pub fn new(streams: usize) -> Self {
        Self {
            stream_free: vec![0.0; streams.max(1)],
            records: Vec::new(),
        }
    }

    /// Submits an op of `duration` seconds on `stream`, starting no
    /// earlier than the end of every op in `deps`. Returns a handle.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist, `duration` is negative, or a
    /// dependency handle is invalid.
    pub fn submit(
        &mut self,
        label: impl Into<String>,
        stream: StreamId,
        duration: f64,
        deps: &[OpHandle],
    ) -> OpHandle {
        assert!(stream.0 < self.stream_free.len(), "unknown stream");
        assert!(duration >= 0.0, "negative duration");
        let dep_end = deps.iter().map(|h| self.end_of(*h)).fold(0.0f64, f64::max);
        let start = self.stream_free[stream.0].max(dep_end);
        let end = start + duration;
        self.stream_free[stream.0] = end;
        self.records.push(OpRecord {
            label: label.into(),
            stream,
            start,
            end,
        });
        OpHandle(self.records.len() - 1)
    }

    /// End time of a submitted op.
    ///
    /// # Panics
    ///
    /// Panics if the handle is invalid.
    pub fn end_of(&self, h: OpHandle) -> f64 {
        self.records[h.0].end
    }

    /// Time at which every submitted op has finished.
    pub fn makespan(&self) -> f64 {
        self.records.iter().map(|r| r.end).fold(0.0, f64::max)
    }

    /// All op records, in submission order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// The timeline as [`Span`]s, in submission order.
    pub fn spans(&self) -> Vec<Span> {
        self.records.iter().map(Span::from).collect()
    }

    /// Total busy time of one stream.
    pub fn busy_time(&self, stream: StreamId) -> f64 {
        self.records
            .iter()
            .filter(|r| r.stream == stream)
            .map(|r| r.end - r.start)
            .sum()
    }

    /// Fraction of the makespan during which `stream` was busy.
    pub fn utilization(&self, stream: StreamId) -> f64 {
        let ms = self.makespan();
        if ms == 0.0 {
            0.0
        } else {
            self.busy_time(stream) / ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_serializes() {
        let mut sim = EventSim::new(1);
        let a = sim.submit("a", StreamId(0), 1.0, &[]);
        let b = sim.submit("b", StreamId(0), 1.0, &[]);
        assert_eq!(sim.end_of(a), 1.0);
        assert_eq!(sim.end_of(b), 2.0);
    }

    #[test]
    fn different_streams_overlap() {
        let mut sim = EventSim::new(2);
        sim.submit("a", COMPUTE, 1.0, &[]);
        sim.submit("b", COPY, 1.0, &[]);
        assert_eq!(sim.makespan(), 1.0);
    }

    #[test]
    fn dependency_across_streams_orders_ops() {
        let mut sim = EventSim::new(2);
        let load = sim.submit("load", COPY, 2.0, &[]);
        let attn = sim.submit("attn", COMPUTE, 0.5, &[load]);
        assert_eq!(sim.records()[1].start, 2.0);
        assert_eq!(sim.end_of(attn), 2.5);
    }

    #[test]
    fn makespan_bounds_busy_time() {
        let mut sim = EventSim::new(2);
        for i in 0..5 {
            sim.submit(format!("c{i}"), COMPUTE, 0.3, &[]);
            sim.submit(format!("t{i}"), COPY, 0.4, &[]);
        }
        assert!(sim.makespan() >= sim.busy_time(COMPUTE).max(sim.busy_time(COPY)) - 1e-12);
        assert!(sim.utilization(COPY) <= 1.0 + 1e-12);
    }

    #[test]
    fn zero_duration_ops_allowed() {
        let mut sim = EventSim::new(1);
        let h = sim.submit("sync", COMPUTE, 0.0, &[]);
        assert_eq!(sim.end_of(h), 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown stream")]
    fn bad_stream_rejected() {
        let mut sim = EventSim::new(1);
        sim.submit("x", StreamId(5), 1.0, &[]);
    }
}
