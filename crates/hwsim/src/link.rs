//! Inter-replica interconnect links for disaggregated serving.
//!
//! A [`LinkSpec`] prices the KV-cache hop between a prefill replica and
//! a decode replica: fixed per-transfer latency plus bytes over
//! bandwidth, the same shape as [`DeviceSpec::pcie_time`] but for the
//! network between nodes rather than the bus inside one. The class
//! constructors cover the deployments the `table3_disagg` bench sweeps
//! — NVLink-class intra-node fabric, InfiniBand and 100G Ethernet
//! between nodes — plus [`LinkSpec::zero_cost`], the idealized link the
//! disaggregation tests use to pin a Prefill+Decode fleet bit-identical
//! to a monolithic one.
//!
//! [`DeviceSpec::pcie_time`]: crate::device::DeviceSpec::pcie_time

use serde::{Deserialize, Serialize};

/// An interconnect class: bandwidth plus fixed per-transfer latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable class name.
    pub name: String,
    /// Link bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Fixed per-transfer latency, seconds (setup + one RTT).
    pub latency: f64,
}

impl LinkSpec {
    /// NVLink-class fabric between GPUs in one node (NVLink 4.0,
    /// ~450 GB/s effective per direction).
    pub fn nvlink() -> Self {
        Self {
            name: "NVLink".into(),
            bandwidth: 450e9,
            latency: 5e-6,
        }
    }

    /// InfiniBand NDR between nodes (400 Gb/s ≈ 50 GB/s, RDMA-class
    /// latency).
    pub fn infiniband() -> Self {
        Self {
            name: "InfiniBand-NDR".into(),
            bandwidth: 50e9,
            latency: 20e-6,
        }
    }

    /// Commodity 100G Ethernet between nodes (~12.5 GB/s, kernel-stack
    /// latency).
    pub fn ethernet_100g() -> Self {
        Self {
            name: "Ethernet-100G".into(),
            bandwidth: 12.5e9,
            latency: 150e-6,
        }
    }

    /// An idealized free link: `time(bytes)` is exactly `0.0` for any
    /// finite byte count. The disaggregation property tests use it to
    /// pin a Prefill+Decode fleet bit-identical to a unified one.
    pub fn zero_cost() -> Self {
        Self {
            name: "zero-cost".into(),
            bandwidth: f64::INFINITY,
            latency: 0.0,
        }
    }

    /// Seconds to move `bytes` across this link (including fixed
    /// latency). Exactly `0.0` on a [`zero_cost`](Self::zero_cost) link.
    pub fn time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }

    /// Whether this link prices every transfer at exactly zero seconds.
    pub fn is_free(&self) -> bool {
        self.latency == 0.0 && self.bandwidth == f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_classes_are_ordered_by_bandwidth() {
        let nv = LinkSpec::nvlink();
        let ib = LinkSpec::infiniband();
        let eth = LinkSpec::ethernet_100g();
        assert!(nv.bandwidth > ib.bandwidth);
        assert!(ib.bandwidth > eth.bandwidth);
        assert!(nv.latency < ib.latency);
        assert!(ib.latency < eth.latency);
        let bytes = 1e9;
        assert!(nv.time(bytes) < ib.time(bytes));
        assert!(ib.time(bytes) < eth.time(bytes));
    }

    #[test]
    fn time_includes_latency_floor() {
        let ib = LinkSpec::infiniband();
        assert!(ib.time(0.0) >= ib.latency);
        // 50 GB at 50 GB/s ~ 1s.
        assert!((ib.time(50e9) - 1.0).abs() < 0.01);
    }

    #[test]
    fn zero_cost_link_is_exactly_free() {
        let free = LinkSpec::zero_cost();
        assert!(free.is_free());
        assert_eq!(free.time(0.0), 0.0);
        assert_eq!(free.time(1.0), 0.0);
        assert_eq!(free.time(1e15), 0.0);
        assert!(!LinkSpec::nvlink().is_free());
    }
}
