//! Device specifications for the paper's two evaluation environments
//! (Table 2).

use serde::{Deserialize, Serialize};

/// A GPU + host pair with the bandwidths the pipeline model needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// GPU memory capacity in bytes (`Mem_GPU` of Table 1).
    pub gpu_mem_bytes: u64,
    /// GPU memory bandwidth, bytes/second.
    pub gpu_mem_bw: f64,
    /// GPU peak FP16 throughput, FLOP/s.
    pub gpu_flops: f64,
    /// Host DRAM capacity in bytes.
    pub cpu_mem_bytes: u64,
    /// CPU↔GPU interconnect bandwidth, bytes/second (PCIe).
    pub pcie_bw: f64,
    /// Fixed per-transfer latency, seconds (driver + DMA setup).
    pub pcie_latency: f64,
    /// Rental price, USD per GPU-hour (on-demand cloud list price
    /// class; edge devices use an amortized ownership figure). Feeds
    /// the fleet cost model and goodput-per-dollar reporting.
    pub hourly_cost: f64,
}

impl DeviceSpec {
    /// The cloud node: NVIDIA A100/A800 80GB (Table 2).
    pub fn a100_80g() -> Self {
        Self {
            name: "A100-80GB".into(),
            gpu_mem_bytes: 80 * (1 << 30),
            gpu_mem_bw: 2.039e12,
            gpu_flops: 312e12,
            cpu_mem_bytes: 1008 * (1 << 30),
            pcie_bw: 25e9,
            pcie_latency: 10e-6,
            hourly_cost: 2.21,
        }
    }

    /// The edge node: RTX 4060 Laptop 8GB + i7-13650HX 24GB (Table 2).
    pub fn rtx4060_laptop() -> Self {
        Self {
            name: "RTX4060-Laptop".into(),
            gpu_mem_bytes: 8 * (1 << 30),
            gpu_mem_bw: 256e9,
            gpu_flops: 45e12,
            cpu_mem_bytes: 24 * (1 << 30),
            pcie_bw: 12e9,
            pcie_latency: 15e-6,
            hourly_cost: 0.12,
        }
    }

    /// An RTX 4090 desktop node (the Fig. 1 framing: 24GB, 3 requests of
    /// 16K at most for Llama3.1-8B).
    pub fn rtx4090() -> Self {
        Self {
            name: "RTX4090-24GB".into(),
            gpu_mem_bytes: 24 * (1 << 30),
            gpu_mem_bw: 1.008e12,
            gpu_flops: 165e12,
            cpu_mem_bytes: 128 * (1 << 30),
            pcie_bw: 25e9,
            pcie_latency: 10e-6,
            hourly_cost: 0.44,
        }
    }

    /// An H100-80GB node (for headroom studies beyond the paper).
    pub fn h100_80g() -> Self {
        Self {
            name: "H100-80GB".into(),
            gpu_mem_bytes: 80 * (1 << 30),
            gpu_mem_bw: 3.35e12,
            gpu_flops: 989e12,
            cpu_mem_bytes: 1008 * (1 << 30),
            pcie_bw: 55e9,
            pcie_latency: 8e-6,
            hourly_cost: 4.76,
        }
    }

    /// The edge node with the paper's 4GB usage cap (Section 7.3.2).
    pub fn rtx4060_laptop_4g() -> Self {
        let mut d = Self::rtx4060_laptop();
        d.name = "RTX4060-Laptop (4GB cap)".into();
        d.gpu_mem_bytes = 4 * (1 << 30);
        d
    }

    /// Seconds to stream `bytes` through GPU memory.
    pub fn hbm_time(&self, bytes: f64) -> f64 {
        bytes / self.gpu_mem_bw
    }

    /// Seconds to execute `flops` at peak.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.gpu_flops
    }

    /// Seconds to move `bytes` across PCIe (including fixed latency).
    pub fn pcie_time(&self, bytes: f64) -> f64 {
        self.pcie_latency + bytes / self.pcie_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_is_faster_than_laptop_everywhere() {
        let a = DeviceSpec::a100_80g();
        let l = DeviceSpec::rtx4060_laptop();
        assert!(a.gpu_mem_bw > l.gpu_mem_bw);
        assert!(a.gpu_flops > l.gpu_flops);
        assert!(a.pcie_bw > l.pcie_bw);
        assert!(a.gpu_mem_bytes > l.gpu_mem_bytes);
    }

    #[test]
    fn pcie_time_includes_latency_floor() {
        let d = DeviceSpec::a100_80g();
        assert!(d.pcie_time(0.0) >= d.pcie_latency);
        // 25 GB at 25 GB/s ~ 1s.
        let t = d.pcie_time(25e9);
        assert!((t - 1.0).abs() < 0.01);
    }

    #[test]
    fn hbm_streams_faster_than_pcie() {
        let d = DeviceSpec::rtx4060_laptop();
        let bytes = 1e9;
        assert!(d.hbm_time(bytes) < d.pcie_time(bytes) / 5.0);
    }

    #[test]
    fn device_ladder_is_ordered() {
        let l = DeviceSpec::rtx4060_laptop();
        let d = DeviceSpec::rtx4090();
        let a = DeviceSpec::a100_80g();
        let h = DeviceSpec::h100_80g();
        assert!(l.gpu_mem_bw < d.gpu_mem_bw);
        assert!(d.gpu_mem_bw < a.gpu_mem_bw);
        assert!(a.gpu_mem_bw < h.gpu_mem_bw);
        assert!(d.gpu_mem_bytes < a.gpu_mem_bytes);
    }

    #[test]
    fn hourly_cost_tracks_the_device_ladder() {
        let l = DeviceSpec::rtx4060_laptop();
        let d = DeviceSpec::rtx4090();
        let a = DeviceSpec::a100_80g();
        let h = DeviceSpec::h100_80g();
        assert!(l.hourly_cost < d.hourly_cost);
        assert!(d.hourly_cost < a.hourly_cost);
        assert!(a.hourly_cost < h.hourly_cost);
        // The capped edge profile inherits the full profile's price.
        assert_eq!(DeviceSpec::rtx4060_laptop_4g().hourly_cost, l.hourly_cost);
    }

    #[test]
    fn capped_edge_device_keeps_other_specs() {
        let full = DeviceSpec::rtx4060_laptop();
        let capped = DeviceSpec::rtx4060_laptop_4g();
        assert_eq!(capped.gpu_mem_bytes, 4 * (1 << 30));
        assert_eq!(capped.gpu_mem_bw, full.gpu_mem_bw);
    }
}
