//! CPU↔GPU transfer timing and accounting.

use crate::device::DeviceSpec;
use crate::link::LinkSpec;
use serde::{Deserialize, Serialize};

/// Accumulates transfer volume and time over a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferEngine {
    total_bytes: f64,
    total_time: f64,
    transfers: u64,
}

impl TransferEngine {
    /// A fresh engine with zero accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time to move `bytes` host→device (or back) on `dev`, recording it.
    pub fn transfer(&mut self, bytes: f64, dev: &DeviceSpec) -> f64 {
        let t = dev.pcie_time(bytes);
        self.total_bytes += bytes;
        self.total_time += t;
        self.transfers += 1;
        t
    }

    /// Time for a transfer batched with others (no extra latency).
    pub fn transfer_batched(&mut self, bytes: f64, dev: &DeviceSpec) -> f64 {
        let t = bytes / dev.pcie_bw;
        self.total_bytes += bytes;
        self.total_time += t;
        self.transfers += 1;
        t
    }

    /// Time to move `bytes` over an inter-replica `link` (the
    /// prefill→decode KV hop), recording it like any other transfer.
    pub fn transfer_link(&mut self, bytes: f64, link: &LinkSpec) -> f64 {
        let t = link.time(bytes);
        self.total_bytes += bytes;
        self.total_time += t;
        self.transfers += 1;
        t
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Total seconds spent transferring (unoverlapped sum).
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// Number of transfers issued.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let dev = DeviceSpec::a100_80g();
        let mut t = TransferEngine::new();
        t.transfer(1e9, &dev);
        t.transfer(2e9, &dev);
        assert_eq!(t.total_bytes(), 3e9);
        assert_eq!(t.transfers(), 2);
        assert!(t.total_time() > 0.1);
    }

    #[test]
    fn link_transfer_prices_and_accounts() {
        let mut t = TransferEngine::new();
        let ib = LinkSpec::infiniband();
        let dt = t.transfer_link(50e9, &ib);
        assert!((dt - ib.time(50e9)).abs() < 1e-12);
        assert_eq!(t.total_bytes(), 50e9);
        assert_eq!(t.transfers(), 1);
        // A zero-cost link still counts bytes but adds no time.
        let before = t.total_time();
        t.transfer_link(1e9, &LinkSpec::zero_cost());
        assert_eq!(t.total_time(), before);
        assert_eq!(t.total_bytes(), 51e9);
    }

    #[test]
    fn batched_transfer_skips_latency() {
        let dev = DeviceSpec::rtx4060_laptop();
        let mut a = TransferEngine::new();
        let mut b = TransferEngine::new();
        let lone = a.transfer(1e6, &dev);
        let batched = b.transfer_batched(1e6, &dev);
        assert!(lone > batched);
        assert!((lone - batched - dev.pcie_latency).abs() < 1e-9);
    }
}
