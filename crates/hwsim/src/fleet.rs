//! Fleet construction: the device-level view of a serving cluster.
//!
//! A fleet is an ordered list of [`DeviceSpec`]s, one per replica slot.
//! The `spec_serve` cluster simulator binds one serving engine to each
//! device; heterogeneous fleets (e.g. A100 nodes backed by cheaper 4090
//! spill capacity) are just mixed lists. The builder keeps construction
//! declarative and the ordering deterministic, which matters because
//! router policies break ties by replica index.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// What phase of a request a replica serves.
///
/// `Unified` replicas run the whole lifecycle (today's behaviour and
/// the default everywhere). In a disaggregated fleet, `Prefill`
/// replicas finish each request at its first token and hand the
/// resident KV off over the interconnect; `Decode` replicas admit those
/// handoffs and run the remaining decode iterations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicaRole {
    /// Runs prefill and decode (the monolithic default).
    #[default]
    Unified,
    /// Runs prefill only; emits a KV handoff at first token.
    Prefill,
    /// Runs decode only; admits prefill handoffs.
    Decode,
}

impl ReplicaRole {
    /// Short lowercase label for reports and traces.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaRole::Unified => "unified",
            ReplicaRole::Prefill => "prefill",
            ReplicaRole::Decode => "decode",
        }
    }
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One replica slot: a device plus the role it serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSlot {
    /// The device backing this slot.
    pub device: DeviceSpec,
    /// The phase this slot serves.
    pub role: ReplicaRole,
}

/// Declarative builder for replica device lists.
///
/// # Example
///
/// ```
/// use spec_hwsim::{DeviceSpec, Fleet};
/// let devices = Fleet::new()
///     .with(DeviceSpec::a100_80g(), 2)
///     .with(DeviceSpec::rtx4090(), 2)
///     .build();
/// assert_eq!(devices.len(), 4);
/// assert_eq!(devices[0].name, "A100-80GB");
/// assert_eq!(devices[3].name, "RTX4090-24GB");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fleet {
    slots: Vec<FleetSlot>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `count` unified replicas of `spec`.
    pub fn with(self, spec: DeviceSpec, count: usize) -> Self {
        self.with_role(spec, ReplicaRole::Unified, count)
    }

    /// Appends `count` replicas of `spec` serving `role` — the
    /// disaggregated form: compute-rich profiles take
    /// [`ReplicaRole::Prefill`], bandwidth-rich profiles take
    /// [`ReplicaRole::Decode`].
    pub fn with_role(mut self, spec: DeviceSpec, role: ReplicaRole, count: usize) -> Self {
        self.slots
            .extend(std::iter::repeat_n(FleetSlot { device: spec, role }, count));
        self
    }

    /// The device list, in replica order (roles dropped).
    pub fn build(self) -> Vec<DeviceSpec> {
        self.slots.into_iter().map(|s| s.device).collect()
    }

    /// The slot list, in replica order, with roles.
    pub fn build_slots(self) -> Vec<FleetSlot> {
        self.slots
    }

    /// Number of replica slots so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no replica slot has been added.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total GPU memory across the fleet, bytes.
    pub fn total_gpu_mem(&self) -> u64 {
        self.slots.iter().map(|s| s.device.gpu_mem_bytes).sum()
    }

    /// Total peak FP16 throughput across the fleet, FLOP/s.
    pub fn total_flops(&self) -> f64 {
        self.slots.iter().map(|s| s.device.gpu_flops).sum()
    }

    /// Total rental price across the fleet, USD per hour.
    pub fn hourly_cost(&self) -> f64 {
        self.slots.iter().map(|s| s.device.hourly_cost).sum()
    }
}

/// `count` identical replicas — the common homogeneous cluster.
pub fn homogeneous(spec: DeviceSpec, count: usize) -> Vec<DeviceSpec> {
    Fleet::new().with(spec, count).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_repeats_the_spec() {
        let f = homogeneous(DeviceSpec::a100_80g(), 3);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|d| d.name == "A100-80GB"));
    }

    #[test]
    fn mixed_fleet_preserves_declaration_order() {
        let f = Fleet::new()
            .with(DeviceSpec::a100_80g(), 1)
            .with(DeviceSpec::rtx4090(), 2)
            .with(DeviceSpec::h100_80g(), 1)
            .build();
        let names: Vec<&str> = f.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            ["A100-80GB", "RTX4090-24GB", "RTX4090-24GB", "H100-80GB"]
        );
    }

    #[test]
    fn aggregates_sum_over_devices() {
        let fleet = Fleet::new()
            .with(DeviceSpec::a100_80g(), 2)
            .with(DeviceSpec::rtx4090(), 1);
        assert_eq!(
            fleet.total_gpu_mem(),
            2 * DeviceSpec::a100_80g().gpu_mem_bytes + DeviceSpec::rtx4090().gpu_mem_bytes
        );
        assert!(fleet.total_flops() > DeviceSpec::a100_80g().gpu_flops);
        assert!(!fleet.is_empty());
    }

    #[test]
    fn empty_fleet_builds_empty() {
        assert!(Fleet::new().build().is_empty());
    }

    #[test]
    fn role_slots_preserve_order_and_default_to_unified() {
        let slots = Fleet::new()
            .with_role(DeviceSpec::h100_80g(), ReplicaRole::Prefill, 2)
            .with_role(DeviceSpec::a100_80g(), ReplicaRole::Decode, 1)
            .with(DeviceSpec::rtx4090(), 1)
            .build_slots();
        let roles: Vec<ReplicaRole> = slots.iter().map(|s| s.role).collect();
        assert_eq!(
            roles,
            [
                ReplicaRole::Prefill,
                ReplicaRole::Prefill,
                ReplicaRole::Decode,
                ReplicaRole::Unified,
            ]
        );
        assert_eq!(slots[0].device.name, "H100-80GB");
        assert_eq!(ReplicaRole::default(), ReplicaRole::Unified);
        assert_eq!(ReplicaRole::Prefill.to_string(), "prefill");
    }

    #[test]
    fn fleet_hourly_cost_sums_over_slots() {
        let fleet = Fleet::new()
            .with_role(DeviceSpec::h100_80g(), ReplicaRole::Prefill, 1)
            .with_role(DeviceSpec::a100_80g(), ReplicaRole::Decode, 2);
        let want = DeviceSpec::h100_80g().hourly_cost + 2.0 * DeviceSpec::a100_80g().hourly_cost;
        assert!((fleet.hourly_cost() - want).abs() < 1e-12);
    }
}
