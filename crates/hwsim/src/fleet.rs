//! Fleet construction: the device-level view of a serving cluster.
//!
//! A fleet is an ordered list of [`DeviceSpec`]s, one per replica slot.
//! The `spec_serve` cluster simulator binds one serving engine to each
//! device; heterogeneous fleets (e.g. A100 nodes backed by cheaper 4090
//! spill capacity) are just mixed lists. The builder keeps construction
//! declarative and the ordering deterministic, which matters because
//! router policies break ties by replica index.

use crate::device::DeviceSpec;

/// Declarative builder for replica device lists.
///
/// # Example
///
/// ```
/// use spec_hwsim::{DeviceSpec, Fleet};
/// let devices = Fleet::new()
///     .with(DeviceSpec::a100_80g(), 2)
///     .with(DeviceSpec::rtx4090(), 2)
///     .build();
/// assert_eq!(devices.len(), 4);
/// assert_eq!(devices[0].name, "A100-80GB");
/// assert_eq!(devices[3].name, "RTX4090-24GB");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fleet {
    devices: Vec<DeviceSpec>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `count` replicas of `spec`.
    pub fn with(mut self, spec: DeviceSpec, count: usize) -> Self {
        self.devices.extend(std::iter::repeat_n(spec, count));
        self
    }

    /// The device list, in replica order.
    pub fn build(self) -> Vec<DeviceSpec> {
        self.devices
    }

    /// Number of replica slots so far.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether no replica slot has been added.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total GPU memory across the fleet, bytes.
    pub fn total_gpu_mem(&self) -> u64 {
        self.devices.iter().map(|d| d.gpu_mem_bytes).sum()
    }

    /// Total peak FP16 throughput across the fleet, FLOP/s.
    pub fn total_flops(&self) -> f64 {
        self.devices.iter().map(|d| d.gpu_flops).sum()
    }
}

/// `count` identical replicas — the common homogeneous cluster.
pub fn homogeneous(spec: DeviceSpec, count: usize) -> Vec<DeviceSpec> {
    Fleet::new().with(spec, count).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_repeats_the_spec() {
        let f = homogeneous(DeviceSpec::a100_80g(), 3);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|d| d.name == "A100-80GB"));
    }

    #[test]
    fn mixed_fleet_preserves_declaration_order() {
        let f = Fleet::new()
            .with(DeviceSpec::a100_80g(), 1)
            .with(DeviceSpec::rtx4090(), 2)
            .with(DeviceSpec::h100_80g(), 1)
            .build();
        let names: Vec<&str> = f.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            ["A100-80GB", "RTX4090-24GB", "RTX4090-24GB", "H100-80GB"]
        );
    }

    #[test]
    fn aggregates_sum_over_devices() {
        let fleet = Fleet::new()
            .with(DeviceSpec::a100_80g(), 2)
            .with(DeviceSpec::rtx4090(), 1);
        assert_eq!(
            fleet.total_gpu_mem(),
            2 * DeviceSpec::a100_80g().gpu_mem_bytes + DeviceSpec::rtx4090().gpu_mem_bytes
        );
        assert!(fleet.total_flops() > DeviceSpec::a100_80g().gpu_flops);
        assert!(!fleet.is_empty());
    }

    #[test]
    fn empty_fleet_builds_empty() {
        assert!(Fleet::new().build().is_empty());
    }
}
