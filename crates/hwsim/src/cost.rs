//! Roofline kernel cost model with engine efficiency profiles.
//!
//! A kernel is characterized by its FLOPs and the bytes it must move
//! through GPU memory; its duration is the roofline maximum of the two,
//! divided by the engine's achieved efficiency, plus a fixed per-kernel
//! launch overhead. The three full-attention baselines of the paper
//! differ exactly in these profiles: eager PyTorch launches many small
//! unfused kernels; FlashAttention fuses attention and avoids
//! materializing the S×S score matrix; FlashInfer adds paged KV handling
//! and batch-decode kernels.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// FLOPs + bytes of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelCost {
    /// Floating point operations.
    pub flops: f64,
    /// Bytes read + written through GPU memory.
    pub bytes: f64,
    /// Number of kernel launches this op dispatches.
    pub launches: f64,
}

impl KernelCost {
    /// A compute+memory kernel with a single launch.
    pub fn new(flops: f64, bytes: f64) -> Self {
        Self {
            flops,
            bytes,
            launches: 1.0,
        }
    }

    /// Adds another kernel's cost (fused: launches don't add).
    pub fn fuse(self, other: KernelCost) -> Self {
        Self {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            launches: self.launches.max(other.launches),
        }
    }

    /// Sequential composition (launches add).
    pub fn then(self, other: KernelCost) -> Self {
        Self {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            launches: self.launches + other.launches,
        }
    }
}

/// An inference engine's achieved-efficiency profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Name as used in the paper's tables.
    pub name: String,
    /// Fraction of peak FLOPS achieved on decode GEMV/GEMM kernels.
    pub flops_eff: f64,
    /// Fraction of peak memory bandwidth achieved.
    pub bw_eff: f64,
    /// Seconds of overhead per kernel launch.
    pub launch_overhead: f64,
    /// Whether decode attention materializes the score matrix in HBM
    /// (eager does; fused kernels do not). Materialization multiplies
    /// attention bytes by this factor.
    pub attn_byte_multiplier: f64,
}

impl EngineProfile {
    /// HuggingFace eager (unfused PyTorch ops).
    pub fn eager() -> Self {
        Self {
            name: "Eager".into(),
            flops_eff: 0.25,
            bw_eff: 0.45,
            launch_overhead: 12e-6,
            attn_byte_multiplier: 2.0,
        }
    }

    /// FlashAttention-2 fused kernels.
    pub fn flash_attention() -> Self {
        Self {
            name: "FlashAttention".into(),
            flops_eff: 0.55,
            bw_eff: 0.75,
            launch_overhead: 6e-6,
            attn_byte_multiplier: 1.0,
        }
    }

    /// FlashInfer (fused + paged + batch-decode specialization).
    pub fn flashinfer() -> Self {
        Self {
            name: "FlashInfer".into(),
            flops_eff: 0.65,
            bw_eff: 0.88,
            launch_overhead: 3e-6,
            attn_byte_multiplier: 1.0,
        }
    }

    /// Duration of one op on a device under this profile.
    pub fn op_time(&self, cost: KernelCost, dev: &DeviceSpec) -> f64 {
        let compute = dev.compute_time(cost.flops) / self.flops_eff;
        let memory = dev.hbm_time(cost.bytes) / self.bw_eff;
        compute.max(memory) + cost.launches * self.launch_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_strictly_ordered_on_decode_kernels() {
        let dev = DeviceSpec::a100_80g();
        // A memory-bound decode attention op: 1 GFLOP, 1 GB, 32 launches.
        let cost = KernelCost {
            flops: 1e9,
            bytes: 1e9,
            launches: 32.0,
        };
        let eager = EngineProfile::eager().op_time(cost, &dev);
        let flash = EngineProfile::flash_attention().op_time(cost, &dev);
        let fi = EngineProfile::flashinfer().op_time(cost, &dev);
        assert!(eager > flash && flash > fi, "{eager} {flash} {fi}");
    }

    #[test]
    fn op_time_has_launch_floor() {
        let dev = DeviceSpec::a100_80g();
        let p = EngineProfile::eager();
        let tiny = KernelCost::new(1.0, 1.0);
        assert!(p.op_time(tiny, &dev) >= p.launch_overhead);
    }

    #[test]
    fn roofline_picks_binding_resource() {
        let dev = DeviceSpec::a100_80g();
        let p = EngineProfile::flashinfer();
        // Heavily memory bound.
        let mem = KernelCost::new(1e6, 10e9);
        let t_mem = p.op_time(mem, &dev);
        assert!((t_mem - 10e9 / dev.gpu_mem_bw / p.bw_eff - p.launch_overhead).abs() < 1e-6);
        // Heavily compute bound.
        let comp = KernelCost::new(1e15, 1e3);
        let t_comp = p.op_time(comp, &dev);
        assert!(t_comp > dev.compute_time(1e15));
    }

    #[test]
    fn fuse_and_then_compose_costs() {
        let a = KernelCost::new(10.0, 20.0);
        let b = KernelCost::new(1.0, 2.0);
        let fused = a.fuse(b);
        assert_eq!(fused.launches, 1.0);
        assert_eq!(fused.flops, 11.0);
        let seq = a.then(b);
        assert_eq!(seq.launches, 2.0);
    }
}
