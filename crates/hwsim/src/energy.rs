//! First-order energy model.
//!
//! The paper motivates throughput work with cloud "energy and hardware
//! consumption" costs (Section 1). This module attaches per-device energy
//! coefficients to the same quantities the cost model already tracks —
//! FLOPs executed, HBM bytes streamed, PCIe bytes moved, and idle time —
//! so any simulated run can report joules and joules/token.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Energy coefficients for a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Joules per FLOP (fp16).
    pub j_per_flop: f64,
    /// Joules per HBM byte.
    pub j_per_hbm_byte: f64,
    /// Joules per PCIe byte.
    pub j_per_pcie_byte: f64,
    /// Idle/static power, watts.
    pub idle_watts: f64,
}

impl EnergyModel {
    /// Coefficients for a data-center accelerator (A100-class: ~400W TDP
    /// at 312 TFLOPS ≈ 1.3 pJ/FLOP; HBM ≈ 60 pJ/byte; PCIe ≈ 100 pJ/byte).
    pub fn datacenter() -> Self {
        Self {
            j_per_flop: 1.3e-12,
            j_per_hbm_byte: 6e-11,
            j_per_pcie_byte: 1e-10,
            idle_watts: 60.0,
        }
    }

    /// Coefficients for a laptop GPU (higher static share, GDDR6).
    pub fn laptop() -> Self {
        Self {
            j_per_flop: 2.5e-12,
            j_per_hbm_byte: 9e-11,
            j_per_pcie_byte: 1.2e-10,
            idle_watts: 15.0,
        }
    }

    /// Energy of a run: `flops` executed, `hbm_bytes` streamed,
    /// `pcie_bytes` transferred, over `wall_s` seconds of wall time.
    pub fn run_joules(&self, flops: f64, hbm_bytes: f64, pcie_bytes: f64, wall_s: f64) -> f64 {
        self.j_per_flop * flops
            + self.j_per_hbm_byte * hbm_bytes
            + self.j_per_pcie_byte * pcie_bytes
            + self.idle_watts * wall_s
    }

    /// Sustained power implied by running a device at full tilt.
    pub fn peak_watts(&self, dev: &DeviceSpec) -> f64 {
        self.j_per_flop * dev.gpu_flops + self.j_per_hbm_byte * dev.gpu_mem_bw + self.idle_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_peak_power_is_realistic() {
        let e = EnergyModel::datacenter();
        let w = e.peak_watts(&DeviceSpec::a100_80g());
        // A100 TDP is 400W; compute+memory rarely saturate together, so
        // the additive model lands somewhat above.
        assert!((300.0..700.0).contains(&w), "peak {w} W");
    }

    #[test]
    fn transfers_cost_energy() {
        let e = EnergyModel::datacenter();
        let with = e.run_joules(1e12, 1e9, 1e9, 1.0);
        let without = e.run_joules(1e12, 1e9, 0.0, 1.0);
        assert!(with > without);
        assert!((with - without - 0.1).abs() < 1e-6); // 1 GB * 100 pJ/B
    }

    #[test]
    fn faster_run_saves_idle_energy() {
        let e = EnergyModel::laptop();
        let slow = e.run_joules(1e12, 1e9, 0.0, 100.0);
        let fast = e.run_joules(1e12, 1e9, 0.0, 10.0);
        assert!(slow - fast > 15.0 * 89.0);
    }
}
