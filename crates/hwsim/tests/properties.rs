//! Property tests for the event simulator and cost model.

use proptest::prelude::*;
use spec_hwsim::event::{EventSim, COMPUTE, COPY};
use spec_hwsim::{DeviceSpec, EngineProfile, KernelCost};

proptest! {
    /// Same-stream ops never overlap; makespan bounds every stream's
    /// busy time; dependencies are respected.
    #[test]
    fn event_sim_fundamental_invariants(
        ops in prop::collection::vec((0usize..2, 0.0f64..2.0, any::<bool>()), 1..40)
    ) {
        let mut sim = EventSim::new(2);
        let mut last = None;
        for (i, (stream, dur, dep_on_last)) in ops.iter().enumerate() {
            let deps: Vec<_> = if *dep_on_last { last.into_iter().collect() } else { vec![] };
            let h = sim.submit(
                format!("op{i}"),
                spec_hwsim::event::StreamId(*stream),
                *dur,
                &deps,
            );
            if let Some(d) = deps.first() {
                prop_assert!(sim.records().last().unwrap().start >= sim.end_of(*d) - 1e-12);
            }
            last = Some(h);
        }
        // No same-stream overlap.
        for s in [COMPUTE, COPY] {
            let mut spans: Vec<(f64, f64)> = sim
                .records()
                .iter()
                .filter(|r| r.stream == s)
                .map(|r| (r.start, r.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                prop_assert!(w[1].0 >= w[0].1 - 1e-12, "overlap on {s:?}");
            }
            prop_assert!(sim.makespan() >= sim.busy_time(s) - 1e-9);
        }
    }

    /// Op time is monotone in both FLOPs and bytes, for every profile.
    #[test]
    fn op_time_monotone(
        flops in 1e3f64..1e12,
        bytes in 1e3f64..1e10,
        extra in 1.01f64..10.0,
    ) {
        let dev = DeviceSpec::a100_80g();
        for p in [
            EngineProfile::eager(),
            EngineProfile::flash_attention(),
            EngineProfile::flashinfer(),
        ] {
            let base = p.op_time(KernelCost::new(flops, bytes), &dev);
            let more_flops = p.op_time(KernelCost::new(flops * extra, bytes), &dev);
            let more_bytes = p.op_time(KernelCost::new(flops, bytes * extra), &dev);
            prop_assert!(more_flops >= base - 1e-15);
            prop_assert!(more_bytes >= base - 1e-15);
        }
    }

    /// PCIe time is affine in bytes with the latency floor.
    #[test]
    fn pcie_time_affine(bytes in 0.0f64..1e10) {
        let dev = DeviceSpec::rtx4090();
        let t = dev.pcie_time(bytes);
        prop_assert!(t >= dev.pcie_latency);
        prop_assert!((t - dev.pcie_latency - bytes / dev.pcie_bw).abs() < 1e-12);
    }
}
