//! Property-based integration tests: invariants that must hold across
//! arbitrary budgets, context lengths and seeds for every retrieval
//! system.

use proptest::prelude::*;
use specontext::model::{AttentionKind, DistillOptions, Dlm, Model, PrefillMode, SimGeometry};
use specontext::retrieval::clusterkv::ClusterKvSelector;
use specontext::retrieval::common::SelectorConfig;
use specontext::retrieval::quest::QuestSelector;
use specontext::retrieval::shadowkv::ShadowKvSelector;
use specontext::retrieval::spec_head::{MappingLevel, SpecContextRetriever};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every layer-wise selector returns sorted, unique, in-range
    /// positions that the model accepts, for any budget and length.
    #[test]
    fn layerwise_selectors_produce_valid_selections(
        n in 24usize..80,
        budget in 2usize..40,
        seed in 0u64..50,
    ) {
        let geom = SimGeometry::tiny(AttentionKind::Gqa);
        let model = Model::new(geom, seed);
        let tokens: Vec<usize> = (0..n).map(|i| (i * 7 + seed as usize) % 60).collect();
        let (mut kv, _) = model.prefill_tokens(&tokens, PrefillMode::Exact);
        let cfg = SelectorConfig {
            budget,
            sinks: 2,
            recent: 2,
            ..SelectorConfig::with_budget(budget)
        };

        let mut selectors: Vec<Box<dyn specontext::model::LayerSelector>> = vec![
            Box::new(QuestSelector::preprocess(&kv, cfg)),
            Box::new(ClusterKvSelector::preprocess(&kv, cfg, seed)),
            Box::new(ShadowKvSelector::preprocess(&kv, cfg)),
        ];
        let emb = model.embed_tokens(&[1]);
        let mut scratch = specontext::model::SelectScratch::new();
        for sel in &mut selectors {
            // Direct selection validity.
            let g = model.geometry();
            let queries = specontext::tensor::Matrix::from_vec(
                g.q_heads,
                g.head_dim,
                vec![0.1f32; g.q_heads * g.head_dim],
            );
            if let Some(s) = sel.select(0, &queries, &kv.layers[0], &mut scratch) {
                for head in &s {
                    prop_assert!(head.windows(2).all(|w| w[0] < w[1]));
                    prop_assert!(head.iter().all(|&p| p < n));
                }
            }
            // The model accepts the selector end to end.
            let out = model.decode_step_selected(emb.row(0), n, &mut kv, sel.as_mut());
            prop_assert!(out.logits.iter().all(|v| v.is_finite()));
            // Re-derive the cache so each selector starts from the same
            // prefill state.
            let (kv2, _) = model.prefill_tokens(&tokens, PrefillMode::Exact);
            kv = kv2;
        }
    }

    /// SpeContext selections respect the budget exactly and survive the
    /// model's plan validation for every attention kind.
    #[test]
    fn spec_selection_respects_budget(
        kind_ix in 0usize..4,
        n in 24usize..72,
        budget in 6usize..48,
    ) {
        let kind = [
            AttentionKind::Mha,
            AttentionKind::Gqa,
            AttentionKind::Mqa,
            AttentionKind::Mla,
        ][kind_ix];
        let model = Model::new(SimGeometry::tiny(kind), 99);
        let head = Dlm::distill(&model, DistillOptions::default()).to_retrieval_head();
        let cfg = SelectorConfig {
            budget,
            sinks: 2,
            recent: 2,
            ..SelectorConfig::with_budget(budget)
        };
        let mut retr = SpecContextRetriever::new(head, cfg, MappingLevel::Head);
        let tokens: Vec<usize> = (0..n).map(|i| i % 60).collect();
        let emb = model.embed_tokens(&tokens);
        for r in 0..emb.rows() {
            retr.observe(emb.row(r));
        }
        let sel = retr.select(emb.row(n - 1), model.geometry());
        for headsel in &sel.per_head {
            prop_assert!(headsel.len() <= budget.min(n));
        }
        let plan = sel.to_plan(model.geometry().layers);
        prop_assert!(plan.validate(n, model.geometry().kv_heads).is_ok());
    }

    /// Increasing the budget never shrinks the captured attention mass
    /// (on the same instance, same trace).
    #[test]
    fn selection_mass_monotone_in_budget(seed in 0u64..30) {
        use specontext::retrieval::oracle::selection_mass;
        use specontext::model::SparsePlan;
        use specontext::retrieval::spec_head::SpecSelection;

        let model = Model::new(SimGeometry::tiny(AttentionKind::Gqa), seed);
        let head = Dlm::distill(&model, DistillOptions::default()).to_retrieval_head();
        let n = 48;
        let tokens: Vec<usize> = (0..n).map(|i| i % 60).collect();
        let emb = model.embed_tokens(&tokens);
        let (mut kv, _) = model.prefill_embeddings(&emb, PrefillMode::Exact);
        let q = emb.row(n - 1).to_vec();
        let plan = SparsePlan::dense(model.geometry().layers);
        let (_, trace) = model.decode_step_traced(&q, n, &mut kv, &plan);

        let mut state = head.new_state();
        for r in 0..emb.rows() {
            head.append(emb.row(r), &mut state);
        }
        let scores = head.head_scores(&q, &state);
        let group = model.geometry().group_size();
        let mut prev = 0.0;
        for budget in [4usize, 8, 16, 32, 48] {
            let sel = SpecSelection::from_head_scores(
                &scores,
                model.geometry(),
                &SelectorConfig {
                    budget,
                    sinks: 1,
                    recent: 1,
                    ..SelectorConfig::with_budget(budget)
                },
                MappingLevel::Head,
            );
            let mass = selection_mass(&trace, &sel.per_head, group);
            prop_assert!(mass >= prev - 0.02, "budget {budget}: {mass} < {prev}");
            prev = mass;
        }
    }
}
