//! End-to-end integration tests spanning the whole workspace: planted
//! workloads → real forward passes → retrieval → elastic loading →
//! accuracy/throughput reports.

use specontext::core::engine::{Engine, EngineConfig};
use specontext::core::evaluate::{
    longbench_matrix, longwriter_scores, EvalSystem, LongBenchOptions, LongWriterOptions,
};
use specontext::model::{AttentionKind, ModelConfig, SimGeometry};
use specontext::workloads::longbench::TaskKind;

fn engine(kind: AttentionKind, budget: usize) -> Engine {
    Engine::build(EngineConfig {
        geometry: SimGeometry::tiny(kind),
        budget,
        ..EngineConfig::default()
    })
}

#[test]
fn speculative_sparsity_tracks_dense_accuracy() {
    // The headline accuracy claim: at a reasonable budget, SpeContext's
    // planted-evidence scores track full attention.
    let e = engine(AttentionKind::Gqa, 48);
    let opt = LongBenchOptions {
        instances: 5,
        strength: 4.0,
        ..LongBenchOptions::new(TaskKind::TwoWikiMqa, 160, 0)
    };
    let m = longbench_matrix(&e, &[EvalSystem::SpeContext, EvalSystem::Full], &[48], &opt);
    let (ours, full) = (m[0][0], m[1][0]);
    assert!(full > 0.5, "dense baseline too weak: {full}");
    assert!(ours >= full - 0.25, "ours {ours} vs full {full}");
}

#[test]
fn all_attention_kinds_run_the_full_pipeline() {
    for kind in [
        AttentionKind::Mha,
        AttentionKind::Gqa,
        AttentionKind::Mqa,
        AttentionKind::Mla,
    ] {
        let e = engine(kind, 24);
        let mut s = e.session();
        s.prefill_tokens(&(0..48).map(|i| i % 60).collect::<Vec<_>>());
        let out = s.generate(8);
        assert_eq!(out.tokens.len(), 8, "{kind}");
        let t = out.transfer.expect("transfer accounting");
        assert!(t.fetched_entries > 0, "{kind}");
    }
}

#[test]
fn elastic_transfer_matches_overlap_statistics() {
    // The elastic loader's measured reuse must be consistent with the
    // measured adjacent-step overlap: both describe the same set churn.
    let e = engine(AttentionKind::Gqa, 32);
    let mut s = e.session();
    s.prefill_tokens(&(0..64).map(|i| (i * 3) % 60).collect::<Vec<_>>());
    let out = s.generate(16);
    let t = out.transfer.unwrap();
    let reuse = t.reuse_fraction();
    let mean_overlap: f32 = out.overlaps.iter().sum::<f32>() / out.overlaps.len() as f32;
    // Reuse counts per-head slot reuse including the cold start; overlap
    // is union-level between consecutive steps. They must agree loosely.
    assert!(
        (reuse - mean_overlap).abs() < 0.45,
        "reuse {reuse} vs overlap {mean_overlap}"
    );
    assert!(reuse > 0.3, "elastic loading should reuse slots: {reuse}");
}

#[test]
fn longwriter_baselines_equal_full_attention_on_short_prompts() {
    // Paper Section 7.2.2: with ~100-token prompts, the baselines select
    // the whole prompt (it is smaller than any budget) and retain all new
    // KV, so their outputs equal full attention's at every budget.
    let e = engine(AttentionKind::Gqa, 64);
    let opt = LongWriterOptions {
        prompt_len: 12,
        gen_len: 24,
        budget: 64,
        seed: 77,
    };
    for sys in [EvalSystem::Quest, EvalSystem::ShadowKv] {
        let s = longwriter_scores(&e, sys, &opt);
        assert!(
            (s.relevance - 5.0).abs() < 1e-4,
            "{sys}: relevance {} (outputs should match full attention)",
            s.relevance
        );
    }
}

#[test]
fn real_geometry_memory_facts_hold() {
    // Cross-crate sanity: config presets, memory model and thresholds
    // tell one consistent story at paper scale.
    use specontext::hwsim::DeviceSpec;
    use specontext::runtime::adaptive::Thresholds;
    use specontext::runtime::memory::MemoryModel;

    let cfg = ModelConfig::llama3_1_8b();
    let mm = MemoryModel::new(&cfg, &DeviceSpec::a100_80g());
    let th = Thresholds::compute(&mm, 16, 2048);
    // At the S_T_0 boundary the two formulations agree.
    let s0 = th.values[0] as usize;
    assert!(mm.fits_all(16, s0));
    assert!(!mm.fits_all(16, s0 + 2));
    // Offloading all layers buys the most headroom.
    assert!(th.values[cfg.layers] > th.values[0]);
}

#[test]
fn serving_story_is_consistent_across_environments() {
    use specontext::hwsim::DeviceSpec;
    use specontext::runtime::serving::{ServingSim, SystemKind, Workload};

    // Cloud: ours beats every baseline on the reasoning workload.
    let cloud = ServingSim::new(
        ModelConfig::deepseek_distill_llama_8b(),
        DeviceSpec::a100_80g(),
        2048,
    );
    let w = Workload::new(2048, 16 * 1024, 8);
    let ours = cloud.throughput(SystemKind::SpeContext, &w).tokens_per_s;
    for sys in [
        SystemKind::FullFlash,
        SystemKind::FullFlashInfer,
        SystemKind::ShadowKv,
    ] {
        let t = cloud.throughput(sys, &w).tokens_per_s;
        assert!(ours > t, "{sys}: {t} >= ours {ours}");
    }

    // Edge: same ordering at 4GB.
    let edge = ServingSim::new(
        ModelConfig::reasoning_llama3_2_1b(),
        DeviceSpec::rtx4060_laptop_4g(),
        2048,
    );
    let we = Workload::new(2048, 16 * 1024, 1);
    let ours_e = edge.throughput(SystemKind::SpeContext, &we).tokens_per_s;
    let shadow_e = edge.throughput(SystemKind::ShadowKv, &we).tokens_per_s;
    assert!(ours_e > shadow_e);
}
