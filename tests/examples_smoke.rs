//! Smoke tests for the `examples/` directory.
//!
//! Compilation of all eight examples is gated by `cargo build --examples`
//! in CI; these tests additionally exercise the quickstart and
//! cluster-serving examples' flows in-process so `cargo test` catches
//! runtime regressions of the paths the examples walk (engine build,
//! prefill, generate, transfer stats, the paper-scale config math, and
//! the routed-fleet serving loop).

use specontext::core::engine::{Engine, EngineConfig};
use specontext::hwsim::{DeviceSpec, Fleet};
use specontext::model::{AttentionKind, ModelConfig, SimGeometry};
use specontext::runtime::{SystemKind, Workload};
use specontext::serve::arrivals::{self, TraceConfig};
use specontext::serve::cluster::{Cluster, ClusterConfig};
use specontext::serve::router::RouterKind;
use specontext::serve::slo::SloSpec;
use specontext::tensor::SimRng;

/// The quickstart example, end to end, with its printed quantities
/// asserted instead of printed.
#[test]
fn quickstart_flow_end_to_end() {
    let engine = Engine::build(EngineConfig {
        geometry: SimGeometry::tiny(AttentionKind::Gqa),
        budget: 48,
        ..EngineConfig::default()
    });

    // The retrieval head must be a strict parameter subset of the DLM.
    let head_params = engine.dlm().to_retrieval_head().param_count_non_embedding();
    let dlm_params = engine.dlm().param_count_non_embedding();
    assert!(head_params > 0);
    assert!(
        head_params < dlm_params,
        "pruned head ({head_params}) must be smaller than the DLM ({dlm_params})"
    );

    let mut session = engine.session();
    let prompt: Vec<usize> = (0..96).map(|i| (i * 13) % 60).collect();
    session.prefill_tokens(&prompt);
    assert_eq!(session.seq_len(), 96);

    let out = session.generate(24);
    assert_eq!(out.tokens.len(), 24);
    let transfer = out.transfer.expect("speculative path reports transfers");
    assert!(transfer.fetched_entries > 0);
    assert!((0.0..=1.0).contains(&transfer.reuse_fraction()));
    assert!(out.overlaps.iter().all(|o| (0.0..=1.0 + 1e-6).contains(o)));
}

/// The cluster-serving example's flow, shrunk: a mixed fleet behind a
/// KV-pressure router completes an open-loop trace with full accounting.
#[test]
fn cluster_serving_flow_end_to_end() {
    let fleet = Fleet::new()
        .with(DeviceSpec::a100_80g(), 1)
        .with(DeviceSpec::rtx4090(), 1)
        .build();
    let mut cluster = Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet,
        2048,
        SystemKind::SpeContext,
        ClusterConfig::default(),
        RouterKind::LeastKvPressure.build(),
    );
    let trace = arrivals::generate(
        &TraceConfig::poisson(1.0)
            .shapes(vec![Workload::new(2048, 1024, 1)])
            .count(10),
        &mut SimRng::seed(0xFACADE),
    );
    let report = cluster.run(&trace, &SloSpec::default());
    assert_eq!(report.completed, 10);
    assert_eq!(report.rejected, 0);
    assert!(report.throughput > 0.0);
    assert!(report.slo.ttft.p99 >= report.slo.ttft.p50);
    assert_eq!(report.queue_depth.len(), 10);
}

/// The trace-replay example's flow, shrunk: record a generated trace,
/// replay it through a cluster, and check the replayed run matches
/// running the materialized trace directly.
#[test]
fn trace_replay_flow_end_to_end() {
    use specontext::serve::trace::{decode, encode, ReplayArrivals};

    let cfg = TraceConfig::bursty(1.0, 8.0, 0.1)
        .shapes(vec![Workload::new(2048, 1024, 1)])
        .count(12)
        .seed(0x7ACE);
    let bytes = encode(cfg.source());
    let trace = decode(&bytes).expect("round-trips");
    assert_eq!(trace.len(), 12);
    let fleet = || {
        Cluster::from_fleet(
            &ModelConfig::deepseek_distill_llama_8b(),
            &Fleet::new().with(DeviceSpec::a100_80g(), 2).build(),
            2048,
            SystemKind::SpeContext,
            ClusterConfig::new(),
            RouterKind::LeastOutstanding.build(),
        )
    };
    let direct = fleet().run(&trace, &SloSpec::default());
    let replayed = fleet().run_source(
        &mut ReplayArrivals::new(bytes).expect("validates"),
        &SloSpec::default(),
    );
    assert_eq!(direct, replayed);
    assert_eq!(direct.completed + direct.rejected, 12);
}

/// The paper-scale facts quoted by the quickstart example stay sane.
#[test]
fn paper_scale_facts_are_plausible() {
    let cfg = ModelConfig::llama3_1_8b();
    let kv_gb = cfg.kv_bytes_total(32 * 1024) as f64 / 1e9;
    assert!(
        (1.0..64.0).contains(&kv_gb),
        "32K-context KV cache of {kv_gb:.2} GB is outside the plausible range"
    );
    let head_mb = cfg.retrieval_head_params() as f64 * 2.0 / 1e6;
    assert!(
        head_mb < 1024.0,
        "retrieval head of {head_mb:.0} MB is not lightweight"
    );
}

/// The fair-serving example's flow, shrunk: a 2-tenant mix under DRR
/// queues with preemption completes with per-tenant SLO accounting and
/// the short tenant protected.
#[test]
fn fair_serving_flow_end_to_end() {
    use specontext::runtime::{FairConfig, PreemptionPolicy, QueueDiscipline, SchedulerConfig};
    use specontext::serve::arrivals::TenantClass;

    let mut cluster = Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &Fleet::new().with(DeviceSpec::a100_80g(), 1).build(),
        2048,
        SystemKind::SpeContext,
        ClusterConfig::new().scheduler(SchedulerConfig {
            max_batch: 4,
            admission_stride: 4,
            fair: FairConfig {
                discipline: QueueDiscipline::DeficitRoundRobin,
                weights: vec![(0, 4), (1, 1)],
                preemption: PreemptionPolicy::DeficitRoundRobin,
                ..FairConfig::default()
            },
        }),
        RouterKind::LeastOutstanding.build(),
    );
    let trace = arrivals::generate(
        &TraceConfig::poisson(2.0)
            .tenants(vec![
                TenantClass::new(0, 3, vec![Workload::new(512, 256, 1)]),
                TenantClass::new(1, 1, vec![Workload::new(2048, 8192, 1)]),
            ])
            .count(16),
        &mut SimRng::seed(0xFA1A),
    );
    let report = cluster.run(&trace, &SloSpec::new(10.0, 0.02));
    assert_eq!(report.completed + report.rejected, 16);
    assert_eq!(report.slo.per_tenant.len(), 2);
    let good_sum: f64 = report
        .slo
        .per_tenant
        .iter()
        .map(|t| t.goodput_tokens_per_s)
        .sum();
    assert!((good_sum - report.slo.goodput_tokens_per_s).abs() < 1e-9);
}
