//! SpeContext — efficient long-context reasoning with speculative context
//! sparsity (paper reproduction).
//!
//! This facade crate re-exports the full public API. Start with
//! [`core::engine::Engine`] for generation with speculative sparsity, or
//! see the `examples/` directory:
//!
//! * `quickstart` — build an engine, prefill, generate;
//! * `longbench_eval` — accuracy of every retrieval system on the
//!   synthetic LongBench tasks;
//! * `cloud_serving` — Table-3-style throughput estimation on an A100;
//! * `edge_deployment` — adaptive memory management on an 8GB laptop GPU;
//! * `cluster_serving` — a routed multi-replica fleet under open-loop
//!   load with SLO accounting (the [`serve`] subsystem);
//! * `fair_serving` — multi-tenant DRR queues and preemption with
//!   per-tenant SLO breakdowns;
//! * `trace_replay` — record a million-request trace to the compact
//!   binary format, characterize it, and replay it bit-for-bit.
//!
//! ```
//! use specontext::core::engine::{Engine, EngineConfig};
//!
//! let engine = Engine::build(EngineConfig {
//!     budget: 16,
//!     ..EngineConfig::default()
//! });
//! let mut session = engine.session();
//! session.prefill_tokens(&(0..32).collect::<Vec<_>>());
//! let out = session.generate(4);
//! assert_eq!(out.tokens.len(), 4);
//! ```

pub use specontext_core as core;

pub use spec_hwsim as hwsim;
pub use spec_kvcache as kvcache;
pub use spec_model as model;
pub use spec_parallel as parallel;
pub use spec_retrieval as retrieval;
pub use spec_runtime as runtime;
pub use spec_serve as serve;
pub use spec_telemetry as telemetry;
pub use spec_tensor as tensor;
pub use spec_workloads as workloads;
