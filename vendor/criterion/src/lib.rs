//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so this stub provides
//! the benchmarking surface `benches/kernels.rs` uses: [`Criterion`] with
//! the builder knobs, `bench_function`, `Bencher::iter` /
//! `iter_batched`, [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a straightforward
//! warmup-then-measure loop around `std::time::Instant`; it reports the
//! mean and best iteration time without criterion's statistical analysis,
//! which is enough for the relative kernel comparisons the workspace
//! tracks.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stub re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A finished benchmark's timings, in nanoseconds per iteration.
///
/// Not part of upstream criterion's API: the stub records one of these
/// per `bench_function` call so self-driving benches can persist a
/// machine-readable timing summary (see `results/bench_kernels.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Benchmark name as passed to `bench_function`.
    pub name: String,
    /// Mean ns/iter over the measured samples.
    pub mean_ns: f64,
    /// Best (minimum) sample's ns/iter.
    pub best_ns: f64,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    summaries: Vec<Summary>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            summaries: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            time_per_sample: self.measurement_time.div_f64(self.sample_size as f64),
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        if let Some(summary) = b.report(name) {
            self.summaries.push(summary);
        }
        self
    }

    /// Timings of every benchmark run so far, in execution order
    /// (stub extension; see [`Summary`]).
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }

    /// The mean ns/iter of the named benchmark, if it has run
    /// (stub extension).
    pub fn mean_ns(&self, name: &str) -> Option<f64> {
        self.summaries
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.mean_ns)
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    warm_up_time: Duration,
    time_per_sample: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` (ns per iteration).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run until the budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            let input = setup();
            std::hint::black_box(routine(input));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: each sample runs the routine for roughly the
        // per-sample budget and records mean ns/iter.
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut iters = 0u64;
            let mut elapsed = Duration::ZERO;
            while elapsed < self.time_per_sample {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += t0.elapsed();
                iters += 1;
            }
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, name: &str) -> Option<Summary> {
        if self.samples.is_empty() {
            println!("{name:<40} (no measurement)");
            return None;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let best = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<40} mean {:>12}  best {:>12}",
            fmt_ns(mean),
            fmt_ns(best)
        );
        Some(Summary {
            name: name.to_string(),
            mean_ns: mean,
            best_ns: best,
        })
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
