//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stub.
//!
//! The build environment has no crates.io access, so this macro is written
//! against `proc_macro` alone — no `syn`, no `quote`. It parses the small
//! grammar the workspace actually uses (non-generic named structs, tuple
//! structs, and enums with unit / struct / tuple variants, none with
//! `#[serde(...)]` attributes) and emits impls of the stub's value-based
//! `serde::Serialize` / `serde::Deserialize` traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed `struct` or `enum` item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Derives the stub `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stub `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stub does not support generic types (deriving on `{name}`)");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::TupleStruct { name, arity: 0 },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a delimited token stream on top-level commas.
fn split_on_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => out.push(Vec::new()),
            _ => out.last_mut().unwrap().push(tt),
        }
    }
    out.retain(|part| !part.is_empty());
    out
}

/// Field names of a `{ ... }` struct body, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_on_commas(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_on_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_on_commas(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            let name = match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            i += 1;
            let kind = match part.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_top_level_fields(g.stream()))
                }
                // `Variant = 3` style discriminants are not used here.
                other => panic!("unsupported variant body for `{name}`: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => "::serde::Value::Null".to_string(),
                1 => "::serde::Serialize::serialize(&self.0)".to_string(),
                n => {
                    let items = (0..*n)
                        .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::Value::Seq(vec![{items}])")
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![\
                                   (\"{vn}\".to_string(), ::serde::Value::Map(vec![{entries}]))]),"
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binds = (0..*arity)
                                .map(|k| format!("x{k}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let inner = if *arity == 1 {
                                "::serde::Serialize::serialize(x0)".to_string()
                            } else {
                                let items = (0..*arity)
                                    .map(|k| format!("::serde::Serialize::serialize(x{k})"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!("::serde::Value::Seq(vec![{items}])")
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![\
                                   (\"{vn}\".to_string(), {inner})]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(v.get_field(\"{f}\")?)?,"))
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{\n{inits}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => format!("Ok({name})"),
                1 => format!("Ok({name}(::serde::Deserialize::deserialize(v)?))"),
                n => {
                    let items = (0..*n)
                        .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "match v {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                                 Ok({name}({items})),\n\
                             _ => Err(::serde::Error::new(\
                                 \"expected {n}-element sequence for {name}\")),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect::<Vec<_>>()
                .join("\n");
            let tagged_arms = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::deserialize(\
                                         inner.get_field(\"{f}\")?)?,"
                                ))
                                .collect::<Vec<_>>()
                                .join("\n");
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{\n{inits}\n}}),"
                            ))
                        }
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!(
                                    "Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?))"
                                )
                            } else {
                                let items = (0..*arity)
                                    .map(|k| format!(
                                        "::serde::Deserialize::deserialize(&items[{k}])?"
                                    ))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!(
                                    "match inner {{\n\
                                         ::serde::Value::Seq(items) if items.len() == {arity} => \
                                             Ok({name}::{vn}({items})),\n\
                                         _ => Err(::serde::Error::new(\
                                             \"expected {arity}-element sequence for {name}::{vn}\")),\n\
                                     }}"
                                )
                            };
                            Some(format!("\"{vn}\" => {{ {body} }}"))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::new(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::Error::new(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::new(\
                                 \"expected string or single-key map for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
