//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this stub provides the
//! parts of serde's surface the workspace uses: the `Serialize` /
//! `Deserialize` traits, their derive macros (via the sibling
//! `serde_derive` stub), and a self-describing [`Value`] data model that
//! the sibling `serde_json` stub reads and writes.
//!
//! Unlike real serde there is no zero-copy visitor machinery: serializing
//! goes through an owned [`Value`] tree. Every type in this workspace is
//! small configuration/report data, so the simplicity is worth far more
//! than the copies.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model both `serde_json` directions use.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer the workspace serializes).
    Int(i64),
    /// Unsigned integer wider than `i64::MAX`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`].
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::new("integer out of range")),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::new("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::new("integer out of range")),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!("expected char, found {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error::new(format!(
                "expected 2-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => Err(Error::new(format!(
                "expected 3-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::deserialize(&v.serialize()).unwrap(), v);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u8>.serialize(), Value::Null);
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u8>::deserialize(&Value::Int(3)).unwrap(),
            Some(3u8)
        );
    }

    #[test]
    fn field_lookup_reports_missing() {
        let m = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert!(m.get_field("a").is_ok());
        assert!(m.get_field("b").is_err());
    }
}
