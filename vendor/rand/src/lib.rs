//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` 0.8 APIs the workspace uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`) are
//! re-implemented here on top of xoshiro256++ with SplitMix64 seeding.
//! The streams are deterministic and of high statistical quality, which is
//! all the simulation needs; this is **not** a cryptographic generator.

pub mod rngs {
    /// The standard seeded generator (xoshiro256++ under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Debiased multiply-shift (Lemire): reject the low
                // product residues that would over-represent some values.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = (rng.next_u64() as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return lo + ((m >> 64) as u64 as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32);

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * <f32 as Standard>::sample(rng)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * <f64 as Standard>::sample(rng)
    }
}

/// The sampling interface, mirroring the subset of `rand::Rng` in use.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of type `T` (integers over the full domain, floats
    /// in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample in the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
