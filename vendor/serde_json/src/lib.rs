//! Offline, API-compatible subset of `serde_json`, built on the vendored
//! serde stub's [`serde::Value`] data model.
//!
//! Supports exactly what the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`] over types that implement the
//! stub's `Serialize` / `Deserialize` traits. The emitted JSON is
//! standard; the parser accepts standard JSON (no comments, no trailing
//! commas).

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::deserialize(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, indent, depth, out),
        Value::Map(entries) => write_map(entries, indent, depth, out),
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // serde_json always distinguishes floats from integers.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json errors on non-finite floats; emitting null keeps
        // report generation infallible, which the bench harness relies on.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}

fn write_seq(items: &[Value], indent: Option<usize>, depth: usize, out: &mut String) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_value(item, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push(']');
}

fn write_map(entries: &[(String, Value)], indent: Option<usize>, depth: usize, out: &mut String) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_string(k, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(v, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push('}');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Map(vec![
            ("title".into(), Value::Str("demo \"x\"".into())),
            ("n".into(), Value::Int(-3)),
            ("f".into(), Value::Float(1.5)),
            (
                "rows".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn parses_escapes() {
        let s: String = from_str("\"a\\n\\u0041\"").unwrap();
        assert_eq!(s, "a\nA");
    }
}
