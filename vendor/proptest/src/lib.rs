//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so this stub implements
//! the slice of proptest's surface the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `any::<T>()`, `prop::collection::{vec, btree_set}`, and
//! [`ProptestConfig`]. Inputs are generated from a deterministic RNG
//! seeded per test (stable across runs and machines). There is **no
//! shrinking**: a failing case panics with the values, which the
//! deterministic seeding makes reproducible.

use rand::{Rng as _, SeedableRng as _};

/// Deterministic input source handed to strategies.
pub struct TestRunner {
    rng: rand::rngs::StdRng,
}

impl TestRunner {
    /// A runner whose stream is derived from the test's name, so every
    /// test sees a stable but distinct sequence.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// The raw RNG (used by strategy impls).
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.rng
    }
}

/// Run-time configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                gen_inclusive_int(runner, lo as u64, hi as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32);

fn gen_inclusive_int(runner: &mut TestRunner, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "empty inclusive range");
    if lo == 0 && hi == u64::MAX {
        return runner.rng().gen();
    }
    lo + runner.rng().gen_range(0..hi - lo + 1)
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Strategy for "any value of `T`" (`proptest::arbitrary::any`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the [`Any`] strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<u64>() as usize
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// A collection size specification (`proptest::collection::SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, runner: &mut TestRunner) -> usize {
        gen_inclusive_int(runner, self.lo as u64, self.hi as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The `proptest::prelude::prop` namespace.
pub mod prop {
    /// Collection strategies (`prop::collection`).
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRunner};

        /// Strategy producing `Vec`s whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let n = self.size.sample(runner);
                (0..n).map(|_| self.element.generate(runner)).collect()
            }
        }

        /// Strategy producing `BTreeSet`s whose elements come from
        /// `element`. Sizes above the number of distinct values the
        /// element strategy can produce saturate at whatever dedup leaves.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// The strategy returned by [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let target = self.size.sample(runner);
                let mut set = std::collections::BTreeSet::new();
                // Bounded attempts so element domains smaller than the
                // requested size cannot loop forever.
                let mut attempts = 0;
                while set.len() < target && attempts < 10 * (target + 1) {
                    set.insert(self.element.generate(runner));
                    attempts += 1;
                }
                set
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests (subset of `proptest::proptest!`).
///
/// Each body runs `config.cases` times with fresh inputs from the per-test
/// deterministic stream. `prop_assert!` failures panic immediately (no
/// shrinking), carrying the formatted message.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a property (panics on failure; no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality of a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality of a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRunner::from_name("ranges");
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut r = TestRunner::from_name("vecs");
        let s = prop::collection::vec(0usize..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
        let exact = prop::collection::vec(0usize..10, 7);
        assert_eq!(exact.generate(&mut r).len(), 7);
    }

    #[test]
    fn btree_set_within_budget() {
        let mut r = TestRunner::from_name("sets");
        let s = prop::collection::btree_set(0usize..64, 0..=8);
        for _ in 0..100 {
            let set = s.generate(&mut r);
            assert!(set.len() <= 8);
            assert!(set.iter().all(|&x| x < 64));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut r = TestRunner::from_name("map");
        let s = (0usize..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_inputs(x in 0usize..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }
}
