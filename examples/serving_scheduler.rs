//! Continuous-batching serving: a Poisson-ish request trace through the
//! scheduler, comparing SpeContext against full attention under memory
//! pressure.
//!
//! Run with `cargo run --release --example serving_scheduler`.

use specontext::core::report::Table;
use specontext::hwsim::DeviceSpec;
use specontext::model::ModelConfig;
use specontext::runtime::scheduler::{Request, Scheduler, SchedulerConfig};
use specontext::runtime::serving::{ServingSim, SystemKind};
use specontext::tensor::SimRng;

fn main() {
    let sim = ServingSim::new(
        ModelConfig::deepseek_distill_llama_8b(),
        DeviceSpec::a100_80g(),
        2048,
    );

    // 24 reasoning requests arriving over ~60 seconds.
    let mut rng = SimRng::seed(0x5C4ED);
    let mut arrival = 0.0;
    let requests: Vec<Request> = (0..24)
        .map(|id| {
            arrival += rng.uniform_range(0.5, 5.0) as f64;
            Request {
                id,
                tenant: 0,
                input_len: 2048,
                output_len: 8 * 1024,
                arrival,
            }
        })
        .collect();

    let mut table = Table::new(
        "continuous batching: 24 x [2k in, 8k out] over ~60s on A100-80GB",
        &[
            "system",
            "tokens/s",
            "mean latency s",
            "p95 latency s",
            "makespan s",
        ],
    );
    for system in [
        SystemKind::FullFlashInfer,
        SystemKind::ShadowKv,
        SystemKind::SpeContext,
    ] {
        let report = Scheduler::new(sim.clone(), system, SchedulerConfig::default()).run(&requests);
        table.push_row(vec![
            system.to_string(),
            format!("{:.1}", report.throughput),
            format!("{:.1}", report.latency.mean),
            format!("{:.1}", report.latency.p95),
            format!("{:.1}", report.makespan),
        ]);
    }
    println!("{table}");
}
