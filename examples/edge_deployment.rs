//! Edge deployment walkthrough: adaptive memory management on an RTX 4060
//! Laptop GPU capped at 4GB (the paper's edge environment).
//!
//! Shows Algorithm 1's compiled sequence-length thresholds, then replays
//! a long reasoning generation and prints each offload event Algorithm 2
//! triggers, with the resulting throughput vs the baselines.
//!
//! Run with `cargo run --release --example edge_deployment`.

use specontext::core::report::Table;
use specontext::hwsim::DeviceSpec;
use specontext::model::ModelConfig;
use specontext::runtime::adaptive::{AdaptiveManager, Thresholds};
use specontext::runtime::memory::MemoryModel;
use specontext::runtime::serving::{MemoryPolicy, ServingSim, SystemKind, Workload};

fn main() {
    let cfg = ModelConfig::reasoning_llama3_2_1b();
    let dev = DeviceSpec::rtx4060_laptop_4g();
    let budget = 2048;

    // Algorithm 1: compile the thresholds.
    let mm = MemoryModel::new(&cfg, &dev);
    let th = Thresholds::compute(&mm, 1, budget);
    println!(
        "model {}: {:.2} GB static (weights + head + runtime buffer) in {:.1} GB GPU",
        cfg.name,
        mm.static_bytes() / 1e9,
        dev.gpu_mem_bytes as f64 / 1e9
    );
    let mut t = Table::new(
        "Algorithm 1 — sequence-length thresholds S_T[i]",
        &["offloaded layers i", "max sequence length"],
    );
    for i in [0usize, 1, 2, 4, 8, 12, 16] {
        t.push_row(vec![i.to_string(), th.values[i].to_string()]);
    }
    println!("{t}");

    // Algorithm 2: replay a growing sequence and log offload events.
    let mut mgr = AdaptiveManager::new(th, cfg.layers);
    println!("replaying generation to 34K tokens:");
    let mut s = 2048;
    while s <= 34 * 1024 {
        for e in mgr.advance_to(s) {
            println!(
                "  S={s:>6}: offload layer {} to CPU (L_CPU={})",
                e.layer, e.l_cpu
            );
        }
        s += 1024;
    }
    println!(
        "final placement: {} layers on GPU, {} on CPU\n",
        mgr.l_gpu(),
        mgr.l_cpu()
    );

    // Throughput comparison (Fig. 10(b) regime).
    let sim = ServingSim::new(cfg, dev, budget);
    let w = Workload::new(2048, 32 * 1024, 1);
    let mut table = Table::new(
        "edge throughput, [2k in, 32k out], 1 request (tokens/s)",
        &["system", "tokens/s"],
    );
    let eager =
        sim.throughput_with_policy(SystemKind::FullEager, &w, MemoryPolicy::AllGpuOrFullOffload);
    let flash =
        sim.throughput_with_policy(SystemKind::FullFlash, &w, MemoryPolicy::AllGpuOrFullOffload);
    let shadow = sim.throughput(SystemKind::ShadowKv, &w);
    let ours = sim.throughput(SystemKind::SpeContext, &w);
    for (name, rep) in [
        ("Full Attn (Eager, offloaded)", eager),
        ("Full Attn (FlashAttn, offloaded)", flash),
        ("ShadowKV (offloaded)", shadow),
        ("SpeContext (adaptive)", ours),
    ] {
        table.push_row(vec![name.into(), format!("{:.1}", rep.tokens_per_s)]);
    }
    println!("{table}");
}
