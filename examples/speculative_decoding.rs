//! Speculative decoding with the distilled LM as the draft model —
//! combining SpeContext's sparsity with EAGLE-style speculation from the
//! same distilled model.
//!
//! Run with `cargo run --release --example speculative_decoding`.

use specontext::core::report::Table;
use specontext::model::{AttentionKind, DistillOptions, Dlm, Model, PrefillMode, SimGeometry};
use specontext::runtime::spec_decode::SpeculativeDecoder;

fn main() {
    let teacher = Model::new(SimGeometry::tiny(AttentionKind::Gqa), 2024);
    let dlm = Dlm::distill(&teacher, DistillOptions::default());

    let prompt: Vec<usize> = (0..48).map(|i| (i * 11) % 60).collect();
    let (kv, out) = teacher.prefill_tokens(&prompt, PrefillMode::Exact);
    let first = Model::argmax_token(&out.logits);

    let mut table = Table::new(
        "speculative decoding (64 tokens, dense verification)",
        &[
            "draft len",
            "rounds",
            "accepted/drafted",
            "acceptance",
            "tok/round",
        ],
    );
    for draft_len in [1usize, 2, 4, 8] {
        let mut kv_run = kv.clone();
        let dec = SpeculativeDecoder::new(&teacher, &dlm, draft_len);
        let res = dec.generate(&mut kv_run, None, first, 64);
        table.push_row(vec![
            draft_len.to_string(),
            res.rounds.to_string(),
            format!("{}/{}", res.accepted, res.drafted),
            format!("{:.2}", res.acceptance_rate()),
            format!("{:.2}", res.tokens_per_round()),
        ]);
    }
    println!("{table}");
    println!(
        "Output is provably identical to greedy decoding — speculation only\n\
         changes how much target-model work each round can batch."
    );
}
