//! Request-lifecycle telemetry: record a traced cluster run, export it.
//!
//! 1. Replays a flash-crowd prefix of the committed sample trace
//!    (`results/sample_trace.sptr`) through an autoscaled, preemption-
//!    enabled fleet with telemetry recording on.
//! 2. Exports the event stream as a Chrome/Perfetto `traceEvents` JSON
//!    (`results/telemetry_trace.json`): one track per replica, one row
//!    per tenant, request slices between admission and completion,
//!    instants for arrivals/checkpoints/scale decisions, counter tracks
//!    for queue depth / batch size / KV occupancy, and flow arrows
//!    linking each preemption to its restore. Open it at
//!    `ui.perfetto.dev` or `chrome://tracing`.
//! 3. Renders the run dashboard markdown and appends it to the trace's
//!    characterization report (`results/telemetry_dashboard.md`).
//!
//! Run with `cargo run --release --example telemetry`.

use specontext::hwsim::{fleet, DeviceSpec};
use specontext::model::ModelConfig;
use specontext::runtime::{
    FairConfig, PreemptionPolicy, QueueDiscipline, SchedulerConfig, SystemKind,
};
use specontext::serve::characterize::characterize;
use specontext::serve::cluster::{AutoscaleConfig, Cluster, ClusterConfig};
use specontext::serve::router::RouterKind;
use specontext::serve::slo::SloSpec;
use specontext::serve::trace::{decode, encode};
use specontext::telemetry::{export_trace, render_dashboard, EventKind};

/// How much of the 4096-request sample the example replays: enough to
/// ride through a burst (preemptions, scale-ups) while keeping the
/// committed Perfetto JSON small.
const PREFIX: usize = 256;

fn results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results")
}

/// A fleet that exercises every lifecycle edge: DRR queues with
/// deficit-based preemption (checkpoint/restore flows) and queue-depth
/// autoscaling (scale-up/down instants).
fn traced_fleet() -> Cluster {
    let cfg = ClusterConfig::new()
        .scheduler(SchedulerConfig {
            max_batch: 4,
            admission_stride: 4,
            fair: FairConfig {
                discipline: QueueDiscipline::DeficitRoundRobin,
                weights: vec![(0, 4), (1, 1)],
                preemption: PreemptionPolicy::DeficitRoundRobin,
                ..FairConfig::default()
            },
        })
        .autoscale(AutoscaleConfig {
            min_replicas: 1,
            scale_up_outstanding: 4,
            scale_down_outstanding: 1,
            ..AutoscaleConfig::default()
        });
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), 3),
        2048,
        SystemKind::SpeContext,
        cfg,
        RouterKind::LeastOutstanding.build(),
    )
}

fn main() {
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);

    // --- 1. traced replay of the committed sample ------------------------
    let sample = std::fs::read(dir.join("sample_trace.sptr"))
        .expect("results/sample_trace.sptr is committed");
    let prefix: Vec<_> = decode(&sample).expect("sample decodes")[..PREFIX].to_vec();
    let t0 = std::time::Instant::now();
    let (report, events) = traced_fleet().run_traced(&prefix, &SloSpec::new(10.0, 0.02));
    let n = |f: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count();
    let preemptions = n(&|k| matches!(k, EventKind::Preempted { .. }));
    let restores = n(&|k| matches!(k, EventKind::Restored { .. }));
    let scale_ups = n(&|k| matches!(k, EventKind::ReplicaScaledUp));
    println!(
        "traced {} requests in {:.2?}: {} events, {} completed / {} rejected, {preemptions} preemptions, {restores} restores, {scale_ups} scale-ups, peak {} active replicas",
        PREFIX,
        t0.elapsed(),
        events.len(),
        report.completed,
        report.rejected,
        report.peak_active,
    );
    assert_eq!(report.completed + report.rejected, PREFIX);
    assert!(preemptions > 0, "the burst must trigger preemptions");
    assert_eq!(preemptions, restores, "every preemption must restore");
    assert!(scale_ups > 0, "the burst must trigger a scale-up");

    // --- 2. Perfetto export ----------------------------------------------
    let json = export_trace(&events);
    // Schema check: the export must stay valid JSON with a traceEvents
    // array and one flow-start per preemption.
    let doc: serde::Value = serde_json::from_str(&json).expect("export is valid JSON");
    let trace_events = match doc.get_field("traceEvents").expect("traceEvents array") {
        serde::Value::Seq(items) => items.len(),
        other => panic!("traceEvents is not an array: {other:?}"),
    };
    let flow_starts = json.matches("\"ph\":\"s\"").count();
    assert_eq!(flow_starts, preemptions, "one flow arrow per preemption");
    let trace_path = dir.join("telemetry_trace.json");
    std::fs::write(&trace_path, &json).expect("write perfetto trace");
    println!(
        "perfetto trace: {} bytes, {trace_events} trace events, {flow_starts} preempt→restore flow arrows [saved {}]",
        json.len(),
        trace_path.display()
    );

    // --- 3. dashboard appended to the characterize report ----------------
    let prefix_bytes = encode(prefix.iter().copied());
    let c = characterize("sample-trace-256-prefix", &prefix_bytes).expect("characterizes");
    let mut doc = c.to_markdown();
    doc.push('\n');
    doc.push_str(&render_dashboard(&events));
    let dash_path = dir.join("telemetry_dashboard.md");
    std::fs::write(&dash_path, doc).expect("write dashboard");
    println!(
        "dashboard: characterization + run summary [saved {}]",
        dash_path.display()
    );
}
