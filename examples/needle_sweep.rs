//! Needle-in-a-haystack depth sweep: retrieval success vs needle depth
//! for SpeContext, StreamingLLM and a sliding window.
//!
//! The classic failure modes appear exactly where expected: windows miss
//! shallow needles, and only content-based retrieval is depth-invariant.
//!
//! Run with `cargo run --release --example needle_sweep`.

use specontext::core::engine::{Engine, EngineConfig};
use specontext::core::report::Table;
use specontext::model::{ModelConfig, PrefillMode, SparsePlan};
use specontext::retrieval::window::{SlidingWindow, StreamingLlm};
use specontext::tensor::SimRng;
use specontext::workloads::context::ContextBuilder;
use specontext::workloads::needle::NeedleTask;

fn main() {
    let cfg = ModelConfig::llama3_1_8b();
    let engine = Engine::build(EngineConfig {
        geometry: cfg.sim_geometry(),
        budget: 64,
        prefill_mode: PrefillMode::Windowed {
            window: 96,
            sinks: 4,
        },
        ..EngineConfig::default()
    });
    let model = engine.model();
    let builder = ContextBuilder::new(model);
    let task = NeedleTask {
        context_len: 1024,
        needle_len: 3,
    };

    let depths = [0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut table = Table::new(
        "needle retrieval by depth (1=found), context 1024, budget 64",
        &[
            "depth",
            "SpeContext",
            "StreamingLLM",
            "SlidingWindow",
            "Full",
        ],
    );
    for &depth in &depths {
        let mut row = vec![format!("{depth:.1}")];
        let inst = task.build(
            model,
            &builder,
            depth,
            &mut SimRng::seed(1000 + (depth * 10.0) as u64),
        );
        let n = inst.emb.rows();
        let q = inst.emb.row(n - 1).to_vec();
        let prefill = || {
            model
                .prefill_embeddings(
                    &inst.emb,
                    PrefillMode::Windowed {
                        window: 96,
                        sinks: 4,
                    },
                )
                .0
        };

        // SpeContext.
        {
            let mut retr = engine.retriever_with_budget(64);
            for r in 0..inst.emb.rows() {
                retr.observe(inst.emb.row(r));
            }
            let sel = retr.select(&q, model.geometry());
            let plan = sel.to_plan(model.geometry().layers);
            let mut kv = prefill();
            let (_, trace) = model.decode_step_traced(&q, n, &mut kv, &plan);
            row.push(found(inst.found(&trace, 3.0)));
        }
        // StreamingLLM and SlidingWindow at the same budget.
        {
            let mut s = StreamingLlm::new(4, 60);
            let mut kv = prefill();
            let (_, trace) = model.decode_step_selected_traced(&q, n, &mut kv, &mut s);
            row.push(found(inst.found(&trace, 3.0)));
        }
        {
            let mut s = SlidingWindow::new(64);
            let mut kv = prefill();
            let (_, trace) = model.decode_step_selected_traced(&q, n, &mut kv, &mut s);
            row.push(found(inst.found(&trace, 3.0)));
        }
        // Full attention.
        {
            let plan = SparsePlan::dense(model.geometry().layers);
            let mut kv = prefill();
            let (_, trace) = model.decode_step_traced(&q, n, &mut kv, &plan);
            row.push(found(inst.found(&trace, 3.0)));
        }
        table.push_row(row);
    }
    println!("{table}");
}

fn found(b: bool) -> String {
    if b {
        "1".into()
    } else {
        "0".into()
    }
}
