//! Disaggregated prefill/decode serving: role-typed fleets hop each
//! request's sparse-budget KV from a prefill replica to a decode
//! replica over a priced interconnect, with cost-aware autoscaling and
//! goodput-per-dollar accounting.
//!
//! 1. Fleet-split comparison: a monolithic 4×A100 fleet against
//!    2P+2D / 1P+3D / 3P+1D splits over InfiniBand.
//! 2. Interconnect sweep at 2P+2D: the sparse budget (SpeContext)
//!    versus dense KV (FlashInfer baseline) — the hop shrinks ~4× on
//!    this prompt-heavy mix, which is the whole disaggregation story.
//! 3. Cost-aware autoscaling on a bursty trace: spin-up latency and a
//!    KV-warmup transfer price every wake; parked replicas bill $0.
//!
//! Run with `cargo run --release --example disagg_serving`.

use specontext::core::report::Table;
use specontext::hwsim::{DeviceSpec, Fleet, FleetSlot, LinkSpec, ReplicaRole};
use specontext::model::ModelConfig;
use specontext::runtime::{SystemKind, Workload};
use specontext::serve::arrivals::{self, ClusterRequest, TraceConfig};
use specontext::serve::cluster::{AutoscaleConfig, Cluster, ClusterConfig, DisaggConfig};
use specontext::serve::router::RouterKind;
use specontext::serve::slo::SloSpec;
use specontext::tensor::SimRng;

const BUDGET: usize = 2048;

fn shapes() -> Vec<Workload> {
    // Prompt-heavy: long prompts make dense KV handoffs expensive.
    vec![Workload::new(8192, 2048, 3), Workload::new(4096, 1024, 1)]
}

fn split_slots(prefill: usize, decode: usize) -> Vec<FleetSlot> {
    Fleet::new()
        .with_role(DeviceSpec::a100_80g(), ReplicaRole::Prefill, prefill)
        .with_role(DeviceSpec::a100_80g(), ReplicaRole::Decode, decode)
        .build_slots()
}

fn cluster(
    system: SystemKind,
    slots: &[FleetSlot],
    link: LinkSpec,
    autoscale: Option<AutoscaleConfig>,
) -> Cluster {
    let mut cfg = ClusterConfig::new().disagg(DisaggConfig::new().link(link));
    if let Some(auto) = autoscale {
        cfg = cfg.autoscale(auto);
    }
    Cluster::from_fleet_slots(
        &ModelConfig::deepseek_distill_llama_8b(),
        slots,
        BUDGET,
        system,
        cfg,
        RouterKind::LeastOutstanding.build(),
    )
}

fn main() {
    let slo = SloSpec::new(30.0, 0.05);
    let steady: Vec<ClusterRequest> = arrivals::generate(
        &TraceConfig::poisson(0.5).shapes(shapes()).count(32),
        &mut SimRng::seed(0xD15A6),
    );

    // --- 1. fleet splits over InfiniBand --------------------------------
    let mut table = Table::new(
        "fleet splits: 32 prompt-heavy req @ 0.5 req/s on 4xA100, SpeContext, InfiniBand",
        &[
            "fleet",
            "hops",
            "hop GB",
            "tokens/s",
            "goodput tok/s",
            "SLO attain",
            "cost $",
            "goodput tok/$",
        ],
    );
    let unified = Fleet::new().with(DeviceSpec::a100_80g(), 4).build_slots();
    for (label, slots) in [
        ("4U (monolithic)", unified),
        ("2P+2D", split_slots(2, 2)),
        ("1P+3D", split_slots(1, 3)),
        ("3P+1D", split_slots(3, 1)),
    ] {
        let r = cluster(SystemKind::SpeContext, &slots, LinkSpec::infiniband(), None)
            .run(&steady, &slo);
        assert_eq!(r.completed, 32);
        if label.starts_with("4U") {
            assert_eq!(r.handoffs.count, 0, "unified fleets never hop KV");
        } else {
            assert_eq!(r.handoffs.count, 32, "one hop per request");
        }
        table.push_row(vec![
            label.to_string(),
            r.handoffs.count.to_string(),
            format!("{:.2}", r.handoffs.bytes / 1e9),
            format!("{:.1}", r.throughput),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
            format!("{:.2}", r.slo.attainment),
            format!("{:.2}", r.cost.cost_usd),
            format!("{:.0}", r.cost.goodput_tokens_per_usd),
        ]);
    }
    println!("{table}");

    // --- 2. sparse vs dense hop bytes across interconnects --------------
    let mut table = Table::new(
        "KV hop pricing at 2P+2D: sparse budget vs dense KV",
        &[
            "system",
            "link",
            "hop GB",
            "hop s",
            "TTFT p99 s",
            "latency p99 s",
        ],
    );
    let mut hop_bytes = Vec::new();
    for system in [SystemKind::FullFlashInfer, SystemKind::SpeContext] {
        for (name, link) in [
            ("nvlink", LinkSpec::nvlink()),
            ("infiniband", LinkSpec::infiniband()),
            ("100GbE", LinkSpec::ethernet_100g()),
        ] {
            let r = cluster(system, &split_slots(2, 2), link, None).run(&steady, &slo);
            hop_bytes.push((system, r.handoffs.bytes));
            table.push_row(vec![
                system.to_string(),
                name.to_string(),
                format!("{:.2}", r.handoffs.bytes / 1e9),
                format!("{:.3}", r.handoffs.transfer_s),
                format!("{:.2}", r.slo.ttft.p99),
                format!("{:.2}", r.slo.latency.p99),
            ]);
        }
    }
    let dense: f64 = hop_bytes
        .iter()
        .filter(|(s, _)| *s == SystemKind::FullFlashInfer)
        .map(|(_, b)| *b)
        .fold(0.0, f64::max);
    let sparse: f64 = hop_bytes
        .iter()
        .filter(|(s, _)| *s == SystemKind::SpeContext)
        .map(|(_, b)| *b)
        .fold(0.0, f64::max);
    assert!(sparse < dense, "the sparse budget must shrink the hop");
    println!("{table}");
    println!(
        "sparse-budget hops move {:.1}x fewer bytes than dense KV on this mix\n",
        dense / sparse
    );

    // --- 3. cost-aware autoscaling on a bursty trace --------------------
    let bursty: Vec<ClusterRequest> = arrivals::generate(
        &TraceConfig::bursty(0.2, 3.0, 0.08)
            .shapes(shapes())
            .count(32),
        &mut SimRng::seed(0xB0057),
    );
    let mut table = Table::new(
        "bursty load at 2P+2D: fixed fleet vs cost-aware autoscale (15s spin-up + KV warmup)",
        &[
            "fleet",
            "peak active",
            "billed h",
            "cost $",
            "goodput tok/$",
            "TTFT p99 s",
        ],
    );
    let auto = AutoscaleConfig {
        min_replicas: 1,
        scale_up_outstanding: 3,
        scale_down_outstanding: 1,
        spin_up_s: 15.0,
        warmup_kv_tokens: BUDGET,
    };
    let mut billed = Vec::new();
    for (label, autoscale) in [("fixed 2P+2D", None), ("autoscaled", Some(auto))] {
        let r = cluster(
            SystemKind::SpeContext,
            &split_slots(2, 2),
            LinkSpec::infiniband(),
            autoscale,
        )
        .run(&bursty, &slo);
        assert_eq!(r.completed + r.rejected, 32);
        billed.push(r.cost.billed_hours);
        table.push_row(vec![
            label.to_string(),
            r.peak_active.to_string(),
            format!("{:.4}", r.cost.billed_hours),
            format!("{:.2}", r.cost.cost_usd),
            format!("{:.0}", r.cost.goodput_tokens_per_usd),
            format!("{:.2}", r.slo.ttft.p99),
        ]);
    }
    assert!(
        billed[1] <= billed[0],
        "parked replicas must not bill: {} vs {}",
        billed[1],
        billed[0]
    );
    println!("{table}");
}
