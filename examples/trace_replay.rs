//! Trace record & replay at million-request scale.
//!
//! 1. Streams a 1M-request diurnal multi-tenant workload straight into
//!    the binary trace encoder — the full trace is never materialized.
//! 2. Validates and replays the encoded trace twice, proving the replay
//!    is deterministic bit-for-bit (and reporting bytes/request against
//!    the format's ≤ 16 bytes/request budget).
//! 3. Characterizes the trace (tenant mix, burstiness, histograms) and
//!    writes the report to `results/trace_characterization.{md,json}`.
//! 4. Regenerates the committed golden sample
//!    (`results/sample_trace.sptr`) from its pinned config.
//! 5. Replays a slice of the sample through a cluster and checks the
//!    replayed run matches running the decoded trace directly.
//! 6. Demonstrates closed-loop sessions: record the realized arrivals of
//!    a think-time-gated run, then replay them open-loop.
//!
//! Run with `cargo run --release --example trace_replay`.

use specontext::hwsim::DeviceSpec;
use specontext::model::ModelConfig;
use specontext::runtime::{SystemKind, Workload};
use specontext::serve::arrivals::{ArrivalSource, ClosedLoopConfig, TenantClass, TraceConfig};
use specontext::serve::characterize::characterize;
use specontext::serve::cluster::{Cluster, ClusterConfig};
use specontext::serve::router::RouterKind;
use specontext::serve::slo::SloSpec;
use specontext::serve::trace::{
    decode, encode, sample_trace_config, RecordingSource, ReplayArrivals, TraceWriter,
};

/// FNV-1a over a byte stream — cheap fingerprint for "bit-for-bit".
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results")
}

fn million_request_config() -> TraceConfig {
    // A full diurnal day at ~350 req/s mean: 1M requests over ~48 min of
    // simulated wall time, three tenant classes.
    TraceConfig::diurnal(100.0, 600.0, 600.0)
        .tenants(vec![
            TenantClass::new(
                0,
                6,
                vec![Workload::new(2048, 1024, 3), Workload::new(8192, 512, 1)],
            ),
            TenantClass::new(1, 3, vec![Workload::new(512, 2048, 1)]),
            TenantClass::new(2, 1, vec![Workload::new(32 * 1024, 2048, 1)]),
        ])
        .count(1_000_000)
        .seed(0xD1A1)
}

fn main() {
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);

    // --- 1. stream-record one million requests --------------------------
    let cfg = million_request_config();
    let t0 = std::time::Instant::now();
    let mut writer = TraceWriter::default();
    for cr in cfg.source() {
        writer.record(&cr);
    }
    let recorded = writer.recorded();
    let bytes_per_request = writer.bytes_per_request();
    let bytes = writer.into_bytes();
    println!(
        "recorded {recorded} requests in {:.2?}: {} bytes total, {bytes_per_request:.2} bytes/request (budget 16)",
        t0.elapsed(),
        bytes.len(),
    );
    assert_eq!(recorded, 1_000_000);
    assert!(bytes_per_request <= 16.0, "size budget exceeded");

    // --- 2. deterministic replay ----------------------------------------
    let t1 = std::time::Instant::now();
    let mut replay = ReplayArrivals::new(bytes.clone()).expect("trace validates");
    assert_eq!(replay.len(), 1_000_000);
    let fingerprint = |replay: &mut ReplayArrivals| -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        while let Some(cr) = replay.next_request() {
            for v in [
                cr.request.id as u64,
                u64::from(cr.request.tenant),
                cr.request.input_len as u64,
                cr.request.output_len as u64,
                cr.request.arrival.to_bits(),
                cr.session,
            ] {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    };
    let first = fingerprint(&mut replay);
    replay.rewind();
    let second = fingerprint(&mut replay);
    assert_eq!(first, second, "replay must be deterministic");
    println!(
        "replayed 2×1M requests in {:.2?}, stream fingerprint {first:#018x} (identical both passes)",
        t1.elapsed()
    );

    // --- 3. characterize -------------------------------------------------
    let c = characterize("diurnal-1M", &bytes).expect("characterizes");
    println!(
        "characterized: {:.1} req/s mean, {:.0} req/s peak ({:.2}x), interarrival CV {:.2}, {} sessions, {} tenants",
        c.mean_rate,
        c.peak_rate,
        c.peak_to_mean,
        c.interarrival_cv,
        c.sessions,
        c.tenants.len()
    );
    std::fs::write(dir.join("trace_characterization.md"), c.to_markdown())
        .expect("write markdown report");
    std::fs::write(dir.join("trace_characterization.json"), c.to_json())
        .expect("write json report");
    println!(
        "[saved {}/trace_characterization.{{md,json}}]",
        dir.display()
    );

    // --- 4. the committed golden sample ----------------------------------
    let sample_cfg = sample_trace_config();
    let sample = encode(sample_cfg.source());
    let sample_path = dir.join("sample_trace.sptr");
    let per_req = (sample.len() as f64 - 7.0) / sample_cfg.count as f64;
    std::fs::write(&sample_path, &sample).expect("write sample trace");
    println!(
        "sample trace: {} requests, {} bytes ({per_req:.2} bytes/request), fnv1a {:#018x} [saved {}]",
        sample_cfg.count,
        sample.len(),
        fnv1a(&sample),
        sample_path.display()
    );

    // --- 5. replayed cluster run == direct run ---------------------------
    let head: Vec<_> = decode(&sample).expect("sample decodes")[..64].to_vec();
    let head_bytes = encode(head.iter().copied());
    let fleet = || {
        Cluster::from_fleet(
            &ModelConfig::deepseek_distill_llama_8b(),
            &[DeviceSpec::a100_80g(), DeviceSpec::rtx4090()],
            2048,
            SystemKind::SpeContext,
            ClusterConfig::new(),
            RouterKind::LeastKvPressure.build(),
        )
    };
    let slo = SloSpec::new(60.0, 0.15);
    let direct = fleet().run(&head, &slo);
    let replayed = fleet().run_source(
        &mut ReplayArrivals::new(head_bytes).expect("head validates"),
        &slo,
    );
    assert_eq!(direct, replayed, "replay must match the direct run");
    println!(
        "cluster replay check: 64-request slice, {} completed / {} rejected, identical reports via slice and replay paths",
        direct.completed, direct.rejected
    );

    // --- 6. closed-loop sessions, recorded and replayed ------------------
    let closed = ClosedLoopConfig::new(8, 4)
        .think(0.5)
        .ramp(1.0)
        .shapes(vec![
            Workload::new(2048, 512, 3),
            Workload::new(512, 2048, 1),
        ])
        .seed(0xC10);
    let mut tee = RecordingSource::new(closed.source());
    let live = fleet().run_source(&mut tee, &slo);
    let realized = tee.into_bytes();
    let again = fleet().run_source(
        &mut ReplayArrivals::new(realized.clone()).expect("recording validates"),
        &slo,
    );
    println!(
        "closed loop: 8 sessions x 4 turns, {} completed live (makespan {:.1}s); open-loop replay of the realized trace completed {} (makespan {:.1}s)",
        live.completed, live.makespan, again.completed, again.makespan
    );
    assert_eq!(live.completed, 32);
    assert_eq!(again.completed, live.completed);
}
