//! Cloud serving walkthrough: estimate multi-request throughput for every
//! system on an A100-80GB, the Table-3 setting.
//!
//! Run with `cargo run --release --example cloud_serving`.

use specontext::core::report::{throughput_cell, Table};
use specontext::hwsim::DeviceSpec;
use specontext::model::ModelConfig;
use specontext::runtime::serving::{ServingSim, SystemKind, Workload};

fn main() {
    let cfg = ModelConfig::deepseek_distill_llama_8b();
    let dev = DeviceSpec::a100_80g();
    let sim = ServingSim::new(cfg.clone(), dev, 2048);

    // The paper's long-context reasoning workload: short prompt, long
    // chain-of-thought generation.
    let w = Workload::new(2048, 32 * 1024, 16);
    println!(
        "workload: {} requests x [{} in, {} out] on {}\n",
        w.requests, w.input_len, w.output_len, cfg.name
    );

    let mut table = Table::new(
        "throughput (each system at its supported batch <= 16)",
        &[
            "system",
            "batch",
            "tokens/s",
            "prefill s",
            "decode s",
            "PCIe GB",
        ],
    );
    for sys in SystemKind::all() {
        // Quest/ClusterKV are single-request systems; HF eager caps at 4.
        let r = w.requests.min(sys.max_batch());
        let rep = sim.throughput(sys, &Workload::new(w.input_len, w.output_len, r));
        table.push_row(vec![
            sys.to_string(),
            r.to_string(),
            if rep.oom {
                "OOM".into()
            } else {
                format!("{:.1}", rep.tokens_per_s)
            },
            format!("{:.1}", rep.prefill_s),
            format!("{:.1}", rep.decode_s),
            format!("{:.2}", rep.transfer_bytes / 1e9),
        ]);
    }
    println!("{table}");

    // Batch scaling: the sparse budget frees GPU memory for more requests.
    let eager = sim
        .throughput(SystemKind::FullEager, &Workload::new(2048, 32 * 1024, 4))
        .tokens_per_s;
    let mut scaling = Table::new(
        "SpeContext batch scaling (tokens/s, speedup vs eager@4)",
        &["batch", "cell"],
    );
    for r in [4usize, 8, 16, 32, 64] {
        let rep = sim.throughput(SystemKind::SpeContext, &Workload::new(2048, 32 * 1024, r));
        let speedup = if eager > 0.0 {
            rep.tokens_per_s / eager
        } else {
            0.0
        };
        scaling.push_row(vec![
            r.to_string(),
            throughput_cell(rep.tokens_per_s, rep.requests, speedup),
        ]);
    }
    println!("{scaling}");
}
