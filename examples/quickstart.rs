//! Quickstart: build a SpeContext engine, prefill a prompt, generate with
//! speculative context sparsity, and inspect the elastic-loading stats.
//!
//! Run with `cargo run --release --example quickstart`.

use specontext::core::engine::{Engine, EngineConfig};
use specontext::model::{AttentionKind, ModelConfig, SimGeometry};

fn main() {
    // 1. Build the engine: a simulated teacher model plus a distilled
    //    retrieval head (EAGLE-3-style, pruned to embedding + QK).
    let engine = Engine::build(EngineConfig {
        geometry: SimGeometry::tiny(AttentionKind::Gqa),
        budget: 48,
        ..EngineConfig::default()
    });
    println!(
        "teacher: {} layers, {} query heads ({})",
        engine.model().geometry().layers,
        engine.model().geometry().q_heads,
        engine.model().geometry().attention,
    );
    println!(
        "retrieval head params (non-embedding): {} (DLM: {}, {:.1}% pruned)",
        engine.dlm().to_retrieval_head().param_count_non_embedding(),
        engine.dlm().param_count_non_embedding(),
        100.0
            * (1.0
                - engine.dlm().to_retrieval_head().param_count_non_embedding() as f64
                    / engine.dlm().param_count_non_embedding() as f64)
    );

    // 2. Prefill a prompt. The retrieval head observes every token first.
    let mut session = engine.session();
    let prompt: Vec<usize> = (0..96).map(|i| (i * 13) % 60).collect();
    session.prefill_tokens(&prompt);
    println!("prefilled {} tokens", session.seq_len());

    // 3. Generate. Each step the head selects the important KV entries
    //    before the LLM runs; elastic loading moves only the diff.
    let out = session.generate(24);
    println!("generated tokens: {:?}", out.tokens);
    if let Some(t) = out.transfer {
        println!(
            "elastic loading: fetched {} KV entries, reused {} ({:.0}% reuse)",
            t.fetched_entries,
            t.reused_entries,
            100.0 * t.reuse_fraction()
        );
    }
    let mean_overlap: f32 = out.overlaps.iter().sum::<f32>() / out.overlaps.len().max(1) as f32;
    println!("adjacent-step selection overlap: {mean_overlap:.2}");

    // 4. Paper-scale facts from the real geometry (no forward pass).
    let cfg = ModelConfig::llama3_1_8b();
    println!(
        "\nreal {}: KV cache at 32K context = {:.1} GB; retrieval head = {:.0} MB fp16",
        cfg.name,
        cfg.kv_bytes_total(32 * 1024) as f64 / 1e9,
        cfg.retrieval_head_params() as f64 * 2.0 / 1e6,
    );
}
