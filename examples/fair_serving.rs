//! Multi-tenant fair serving: a short interactive tenant sharing a
//! 2×A100 fleet with a long-generation batch tenant, compared across
//! scheduling policies (FIFO vs weighted DRR queues, with and without
//! preemption) and across routers (least-outstanding vs weighted-tenant
//! fleet partitioning), with per-tenant SLO accounting.
//!
//! Run with `cargo run --release --example fair_serving`.

use specontext::core::report::Table;
use specontext::hwsim::{fleet, DeviceSpec};
use specontext::model::ModelConfig;
use specontext::runtime::{
    FairConfig, PreemptionPolicy, QueueDiscipline, SchedulerConfig, SystemKind, Workload,
};
use specontext::serve::arrivals::{self, ClusterRequest, TenantClass, TraceConfig};
use specontext::serve::cluster::{Cluster, ClusterConfig};
use specontext::serve::router::{RoutePolicy, RouterKind, WeightedTenant};
use specontext::serve::slo::SloSpec;
use specontext::tensor::SimRng;

/// Tenant 0: interactive [512 in, 256 out]. Tenant 1: batch [2k, 8k].
fn trace() -> Vec<ClusterRequest> {
    arrivals::generate(
        &TraceConfig::poisson(2.0)
            .tenants(vec![
                TenantClass::new(0, 3, vec![Workload::new(512, 256, 1)]),
                TenantClass::new(1, 1, vec![Workload::new(2048, 8192, 1)]),
            ])
            .count(40),
        &mut SimRng::seed(0xFA1A),
    )
}

fn cluster_with(fair: FairConfig, router: Box<dyn RoutePolicy>) -> Cluster {
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), 2),
        2048,
        SystemKind::SpeContext,
        ClusterConfig::new().scheduler(SchedulerConfig {
            max_batch: 4,
            admission_stride: 4,
            fair,
        }),
        router,
    )
}

fn main() {
    let slo = SloSpec::new(10.0, 0.02);
    let reqs = trace();

    // --- scheduling policy comparison -----------------------------------
    let mut table = Table::new(
        "tenant fairness: 40 req @ 2/s on 2xA100, tenant 0 short (w=4) vs tenant 1 long (w=1)",
        &[
            "policy",
            "t0 TTFT p95 s",
            "t0 attain",
            "t1 TTFT p95 s",
            "t1 attain",
            "goodput tok/s",
            "preemptions",
        ],
    );
    let policies: [(&str, QueueDiscipline, PreemptionPolicy); 3] = [
        ("fifo", QueueDiscipline::Fifo, PreemptionPolicy::None),
        (
            "drr queues",
            QueueDiscipline::DeficitRoundRobin,
            PreemptionPolicy::None,
        ),
        (
            "drr + preemption",
            QueueDiscipline::DeficitRoundRobin,
            PreemptionPolicy::DeficitRoundRobin,
        ),
    ];
    for (label, discipline, preemption) in policies {
        let fair = FairConfig {
            discipline,
            weights: vec![(0, 4), (1, 1)],
            preemption,
            ..FairConfig::default()
        };
        let mut c = cluster_with(fair, RouterKind::LeastOutstanding.build());
        let r = c.run(&reqs, &slo);
        let t = |id: u32| {
            r.slo
                .per_tenant
                .iter()
                .find(|t| t.tenant == id)
                .expect("tenant present")
                .clone()
        };
        let (t0, t1) = (t(0), t(1));
        table.push_row(vec![
            label.to_string(),
            format!("{:.2}", t0.ttft.p95),
            format!("{:.2}", t0.attainment),
            format!("{:.2}", t1.ttft.p95),
            format!("{:.2}", t1.attainment),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
            (t0.preemptions + t1.preemptions).to_string(),
        ]);
    }
    println!("{table}");

    // --- router comparison under the fair scheduler ---------------------
    let mut table = Table::new(
        "routers under drr + preemption: shared queues vs weighted fleet partition",
        &["router", "t0 TTFT p95 s", "t1 TTFT p95 s", "goodput tok/s"],
    );
    let routers: [(&str, Box<dyn RoutePolicy>); 2] = [
        ("least-outstanding", RouterKind::LeastOutstanding.build()),
        (
            "weighted-tenant 1:1",
            Box::new(WeightedTenant::with_weights(vec![(0, 1), (1, 1)])),
        ),
    ];
    for (label, router) in routers {
        let fair = FairConfig {
            discipline: QueueDiscipline::DeficitRoundRobin,
            weights: vec![(0, 4), (1, 1)],
            preemption: PreemptionPolicy::DeficitRoundRobin,
            ..FairConfig::default()
        };
        let mut c = cluster_with(fair, router);
        let r = c.run(&reqs, &slo);
        let p95 = |id: u32| {
            r.slo
                .per_tenant
                .iter()
                .find(|t| t.tenant == id)
                .map(|t| t.ttft.p95)
                .unwrap_or(0.0)
        };
        table.push_row(vec![
            label.to_string(),
            format!("{:.2}", p95(0)),
            format!("{:.2}", p95(1)),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
        ]);
    }
    println!("{table}");
}
