//! Cluster serving: a heterogeneous fleet (A100s + RTX 4090 spill
//! capacity) under open-loop Poisson and bursty load, compared across
//! routing policies with SLO accounting, plus a queue-depth-driven
//! autoscaling run.
//!
//! Run with `cargo run --release --example cluster_serving`.

use specontext::core::report::Table;
use specontext::hwsim::{DeviceSpec, Fleet};
use specontext::model::ModelConfig;
use specontext::runtime::{SystemKind, Workload};
use specontext::serve::arrivals::{self, ClusterRequest, TraceConfig};
use specontext::serve::cluster::{AutoscaleConfig, Cluster, ClusterConfig};
use specontext::serve::router::RouterKind;
use specontext::serve::slo::SloSpec;
use specontext::tensor::SimRng;

fn fleet() -> Vec<DeviceSpec> {
    Fleet::new()
        .with(DeviceSpec::a100_80g(), 2)
        .with(DeviceSpec::rtx4090(), 2)
        .build()
}

fn cluster(router: RouterKind, autoscale: Option<AutoscaleConfig>) -> Cluster {
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet(),
        2048,
        SystemKind::SpeContext,
        match autoscale {
            Some(auto) => ClusterConfig::new().autoscale(auto),
            None => ClusterConfig::new(),
        },
        router.build(),
    )
}

fn shapes() -> Vec<Workload> {
    vec![Workload::new(2048, 4096, 3), Workload::new(8192, 2048, 1)]
}

fn main() {
    let slo = SloSpec::new(60.0, 0.15);

    // --- router comparison under steady Poisson load --------------------
    let steady: Vec<ClusterRequest> = arrivals::generate(
        &TraceConfig::poisson(1.0).shapes(shapes()).count(32),
        &mut SimRng::seed(0xF1EE7),
    );
    let mut table = Table::new(
        "router policies: 32 req @ 1.0 req/s on 2xA100 + 2x4090, SpeContext",
        &[
            "router",
            "tokens/s",
            "goodput tok/s",
            "SLO attain",
            "TTFT p99 s",
            "A100 share",
        ],
    );
    for kind in RouterKind::all() {
        let mut c = cluster(kind, None);
        let r = c.run(&steady, &slo);
        let a100: usize = r
            .replicas
            .iter()
            .filter(|rep| rep.device.starts_with("A100"))
            .map(|rep| rep.assigned)
            .sum();
        table.push_row(vec![
            kind.to_string(),
            format!("{:.1}", r.throughput),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
            format!("{:.2}", r.slo.attainment),
            format!("{:.1}", r.slo.ttft.p99),
            format!("{}/{}", a100, r.completed),
        ]);
    }
    println!("{table}");

    // --- bursty load with autoscaling -----------------------------------
    let bursty: Vec<ClusterRequest> = arrivals::generate(
        &TraceConfig::bursty(0.3, 4.0, 0.08)
            .shapes(shapes())
            .count(32),
        &mut SimRng::seed(0xB0057),
    );
    let mut table = Table::new(
        "bursty load (0.3 <-> 4.0 req/s): fixed fleet vs autoscaled",
        &[
            "fleet",
            "tokens/s",
            "goodput tok/s",
            "SLO attain",
            "TTFT p99 s",
            "peak active",
        ],
    );
    for (label, autoscale) in [
        ("fixed x4", None),
        (
            "autoscale 1..4",
            Some(AutoscaleConfig {
                min_replicas: 1,
                scale_up_outstanding: 3,
                scale_down_outstanding: 1,
                ..AutoscaleConfig::default()
            }),
        ),
    ] {
        let mut c = cluster(RouterKind::LeastKvPressure, autoscale);
        let r = c.run(&bursty, &slo);
        table.push_row(vec![
            label.to_string(),
            format!("{:.1}", r.throughput),
            format!("{:.1}", r.slo.goodput_tokens_per_s),
            format!("{:.2}", r.slo.attainment),
            format!("{:.1}", r.slo.ttft.p99),
            r.peak_active.to_string(),
        ]);
        let peak_depth = r.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0);
        println!(
            "[{label}] peak fleet queue depth {peak_depth}, makespan {:.1}s, {} rejected",
            r.makespan, r.rejected
        );
    }
    println!("{table}");
}
