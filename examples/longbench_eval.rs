//! LongBench-style accuracy evaluation across retrieval systems.
//!
//! A compact version of the Fig. 8 experiment: four synthetic tasks with
//! planted evidence, five systems, two budgets, shared instances.
//!
//! Run with `cargo run --release --example longbench_eval`.

use specontext::core::engine::{Engine, EngineConfig};
use specontext::core::evaluate::{longbench_matrix, EvalSystem, LongBenchOptions};
use specontext::core::report::Table;
use specontext::model::{ModelConfig, PrefillMode};
use specontext::workloads::longbench::TaskKind;

fn main() {
    let cfg = ModelConfig::llama3_1_8b();
    let engine = Engine::build(EngineConfig {
        geometry: cfg.sim_geometry(),
        budget: 128,
        prefill_mode: PrefillMode::Windowed {
            window: 96,
            sinks: 4,
        },
        ..EngineConfig::default()
    });

    let systems = [
        EvalSystem::StreamingLlm,
        EvalSystem::Quest,
        EvalSystem::ClusterKv,
        EvalSystem::ShadowKv,
        EvalSystem::SpeContext,
        EvalSystem::Full,
    ];
    let budgets = [64usize, 256];

    for kind in TaskKind::all() {
        let opt = LongBenchOptions {
            instances: 4,
            prefill_mode: PrefillMode::Windowed {
                window: 96,
                sinks: 4,
            },
            strength: 2.5,
            ..LongBenchOptions::new(kind, 1024, 0)
        };
        let scores = longbench_matrix(&engine, &systems, &budgets, &opt);
        let mut table = Table::new(
            format!("{} (context 1024, score x100)", kind.paper_name()),
            &["system", "B=64", "B=256"],
        );
        for (si, sys) in systems.iter().enumerate() {
            table.push_row(vec![
                sys.to_string(),
                format!("{:.1}", scores[si][0] * 100.0),
                format!("{:.1}", scores[si][1] * 100.0),
            ]);
        }
        println!("{table}");
    }
}
