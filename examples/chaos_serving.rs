//! Chaos serving: a 3×A100 fleet driven through seeded crashes,
//! straggler windows, and checkpoint-transfer failures, with every
//! recovery knob on — capped-backoff retries with a dead-letter budget,
//! tenant-weighted overload shedding, probation, and health-aware
//! routing. Compares a fault-free run against the same trace under the
//! fault plan with failure-blind vs health-aware routing.
//!
//! Run with `cargo run --release --example chaos_serving`.

use specontext::core::report::Table;
use specontext::hwsim::{fleet, DeviceSpec};
use specontext::model::ModelConfig;
use specontext::runtime::{
    FairConfig, PreemptionPolicy, QueueDiscipline, SchedulerConfig, SystemKind, Workload,
};
use specontext::serve::arrivals::{self, ClusterRequest, TenantClass, TraceConfig};
use specontext::serve::cluster::{Cluster, ClusterConfig, ClusterReport};
use specontext::serve::faults::{FaultPlan, RetryPolicy, ShedPolicy};
use specontext::serve::router::RouterKind;
use specontext::serve::slo::SloSpec;
use specontext::tensor::SimRng;

/// Tenant 0: interactive [512, 256], weight 3. Tenant 1: batch [2k, 4k].
fn trace() -> Vec<ClusterRequest> {
    arrivals::generate(
        &TraceConfig::poisson(3.0)
            .tenants(vec![
                TenantClass::new(0, 3, vec![Workload::new(512, 256, 1)]),
                TenantClass::new(1, 1, vec![Workload::new(2048, 4096, 1)]),
            ])
            .count(60),
        &mut SimRng::seed(0xC0A5),
    )
}

fn cluster() -> Cluster {
    // DRR + preemption writes preempted work back to the queues with a
    // host-side checkpoint, which is what survives a crash and migrates;
    // without preemption every torn-out request restarts from scratch.
    let scheduler = SchedulerConfig {
        max_batch: 4,
        admission_stride: 4,
        fair: FairConfig {
            discipline: QueueDiscipline::DeficitRoundRobin,
            weights: vec![(0, 3), (1, 1)],
            preemption: PreemptionPolicy::DeficitRoundRobin,
            ..FairConfig::default()
        },
    };
    Cluster::from_fleet(
        &ModelConfig::deepseek_distill_llama_8b(),
        &fleet::homogeneous(DeviceSpec::a100_80g(), 3),
        2048,
        SystemKind::SpeContext,
        ClusterConfig::new().scheduler(scheduler),
        RouterKind::LeastOutstanding.build(),
    )
}

/// Crashes every ~20s of replica uptime (3s repair), a 3× straggler
/// window every ~25s per replica, 10% checkpoint-transfer loss, retries
/// capped at 3 attempts, weighted shedding past 24 outstanding, and 2s
/// of probation before a restarted replica takes fresh traffic.
fn plan(health_aware: bool) -> FaultPlan {
    FaultPlan::none()
        .seed(11)
        .mtbf(20.0, 3.0)
        .random_stragglers(25.0, 5.0, 3.0)
        .kv_loss(0.1)
        .retry(RetryPolicy::default())
        .shed(ShedPolicy::new(24).weights(vec![(0, 3), (1, 1)]))
        .probation(2.0)
        .health_aware(health_aware)
}

fn row(label: &str, r: &ClusterReport) -> Vec<String> {
    let t0 = r
        .slo
        .per_tenant
        .iter()
        .find(|t| t.tenant == 0)
        .expect("tenant 0 present");
    vec![
        label.to_string(),
        r.completed.to_string(),
        r.faults.dead_lettered.to_string(),
        r.faults.shed.to_string(),
        r.faults.retries.to_string(),
        format!("{}/{}", r.faults.crashes, r.faults.recoveries),
        format!("{:.2}", t0.ttft.p95),
        format!("{:.2}", r.slo.attainment),
        format!("{:.1}", r.slo.goodput_tokens_per_s),
    ]
}

fn main() {
    let slo = SloSpec::new(10.0, 0.02);
    let reqs = trace();

    let clean = cluster().run(&reqs, &slo);
    let blind = cluster().run_fault_plan(&reqs, &slo, &plan(false));
    let aware = cluster().run_fault_plan(&reqs, &slo, &plan(true));

    let mut table = Table::new(
        "chaos: 60 req @ 3/s on 3xA100, MTBF 20s / MTTR 3s, 3x stragglers, 10% ckpt loss",
        &[
            "run",
            "completed",
            "dead-lettered",
            "shed",
            "retries",
            "crash/recover",
            "t0 TTFT p95 s",
            "attain",
            "goodput tok/s",
        ],
    );
    table.push_row(row("no faults", &clean));
    table.push_row(row("faults, blind routing", &blind));
    table.push_row(row("faults, health-aware", &aware));
    println!("{table}");

    for (label, r) in [("blind", &blind), ("health-aware", &aware)] {
        let f = &r.faults;
        println!(
            "[{label}] {} crashes ({} recovered), {} in-flight torn out, \
             {} checkpoints migrated, {} lost in transfer, {} straggler windows",
            f.crashes,
            f.recoveries,
            f.lost_in_flight,
            f.checkpoints_migrated,
            f.checkpoints_lost,
            f.straggler_windows
        );
    }

    // Conservation: every submitted request reaches exactly one terminal
    // state, faults or not.
    for r in [&clean, &blind, &aware] {
        assert_eq!(
            r.completed + r.rejected + r.faults.dead_lettered + r.faults.shed,
            reqs.len(),
            "terminal-state conservation"
        );
    }
}
